"""The fluid simulation engine.

The engine advances time in two ways:

* :meth:`FlowSimulator.run_until` — event-driven: between events (flow
  arrivals, departures, demand changes) rates are constant, so the engine
  jumps directly to the earliest of (a) the next scheduled event and (b) the
  next transfer completion, crediting every flow with ``rate × elapsed``
  bytes.
* :meth:`FlowSimulator.run_interval` — sampled: the same fluid model but
  advanced with a fixed timestep, recording a throughput time series (used to
  regenerate the time-series figures 5 and 10).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from .fairshare import allocate_rates, link_utilisation
from .flows import Flow, FlowStats, LinkKey
from .network import SimulationNetwork


@dataclass
class SimulationTrace:
    """Sampled per-flow throughput over time (Mbps)."""

    times: List[float] = field(default_factory=list)
    throughput_mbps: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, time: float, rates_bps: Mapping[str, float]) -> None:
        self.times.append(time)
        for flow_id, rate in rates_bps.items():
            self.throughput_mbps.setdefault(flow_id, []).append(rate / 1e6)
        # Keep all series aligned: flows absent at this instant record zero.
        for flow_id, series in self.throughput_mbps.items():
            if len(series) < len(self.times):
                series.append(0.0)

    def series(self, flow_id: str) -> List[float]:
        return list(self.throughput_mbps.get(flow_id, []))

    def aggregate(self) -> List[float]:
        return [
            sum(series[index] for series in self.throughput_mbps.values() if index < len(series))
            for index in range(len(self.times))
        ]

    def mean_throughput(self, flow_id: str) -> float:
        series = self.series(flow_id)
        return sum(series) / len(series) if series else 0.0


class FlowSimulator:
    """A fluid, max-min-fair flow simulator bound to a simulation network."""

    def __init__(self, network: SimulationNetwork) -> None:
        self.network = network
        self.time = 0.0
        self._flows: Dict[str, Flow] = {}
        self._completed: Dict[str, Flow] = {}
        self._events: List[Tuple[float, int, Callable[["FlowSimulator"], None]]] = []
        self._event_counter = itertools.count()
        self._capacities = network.link_capacities()

    # -- flow and event management -------------------------------------------------

    def add_flow(self, flow: Flow) -> Flow:
        """Register a flow starting now (or at ``flow.start_time`` via an event)."""
        if flow.flow_id in self._flows or flow.flow_id in self._completed:
            raise SimulationError(f"duplicate flow id {flow.flow_id!r}")
        self._flows[flow.flow_id] = flow
        return flow

    def remove_flow(self, flow_id: str) -> None:
        """Remove an open-ended flow (e.g. background traffic that stops)."""
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            flow.completion_time = self.time
            self._completed[flow_id] = flow

    def schedule(self, at_time: float, action: Callable[["FlowSimulator"], None]) -> None:
        """Schedule a callback (flow arrival, demand change, ...) at ``at_time``."""
        heapq.heappush(self._events, (at_time, next(self._event_counter), action))

    def active_flows(self) -> List[Flow]:
        return list(self._flows.values())

    def completed_flows(self) -> List[Flow]:
        return list(self._completed.values())

    def current_rates(self) -> Dict[str, float]:
        """The instantaneous max-min fair rates of all active flows (bps)."""
        return allocate_rates(list(self._flows.values()), self._capacities)

    # -- event-driven execution ------------------------------------------------------

    def run_until(self, end_time: float, max_steps: int = 1_000_000) -> None:
        """Advance the simulation to ``end_time`` (processing events and completions)."""
        steps = 0
        while self.time < end_time - 1e-12:
            steps += 1
            if steps > max_steps:
                raise SimulationError("simulation exceeded the maximum number of steps")
            # Fire any events due now.
            while self._events and self._events[0][0] <= self.time + 1e-12:
                _, _, action = heapq.heappop(self._events)
                action(self)
            rates = self.current_rates()
            horizon = end_time
            if self._events:
                horizon = min(horizon, self._events[0][0])
            # Earliest completion under the current constant rates.
            for flow in self._flows.values():
                rate = rates.get(flow.flow_id, 0.0)
                if flow.is_finite and rate > 0.0:
                    finish = self.time + flow.remaining_bytes() * 8.0 / rate
                    horizon = min(horizon, finish)
            horizon = max(horizon, self.time)
            elapsed = horizon - self.time
            self._advance(rates, elapsed)
            self.time = horizon
            self._complete_finished()

    def _advance(self, rates: Mapping[str, float], elapsed: float) -> None:
        if elapsed <= 0.0:
            return
        for flow in self._flows.values():
            rate = rates.get(flow.flow_id, 0.0)
            flow.current_rate_bps = rate
            flow.bytes_sent += rate * elapsed / 8.0

    def _complete_finished(self) -> None:
        finished = [
            flow_id
            for flow_id, flow in self._flows.items()
            if flow.is_finite and flow.remaining_bytes() <= 1e-6
        ]
        for flow_id in finished:
            flow = self._flows.pop(flow_id)
            flow.completion_time = self.time
            self._completed[flow_id] = flow

    # -- sampled execution ---------------------------------------------------------------

    def run_interval(
        self, duration: float, timestep: float = 1.0
    ) -> SimulationTrace:
        """Advance with a fixed timestep, recording a throughput trace."""
        if timestep <= 0:
            raise SimulationError("timestep must be positive")
        trace = SimulationTrace()
        end_time = self.time + duration
        while self.time < end_time - 1e-9:
            while self._events and self._events[0][0] <= self.time + 1e-12:
                _, _, action = heapq.heappop(self._events)
                action(self)
            rates = self.current_rates()
            trace.record(self.time, rates)
            step = min(timestep, end_time - self.time)
            self._advance(rates, step)
            self.time += step
            self._complete_finished()
        return trace

    # -- reporting ---------------------------------------------------------------------

    def stats(self) -> List[FlowStats]:
        """Summary statistics for all flows seen by the simulator."""
        result = []
        for flow in itertools.chain(self._completed.values(), self._flows.values()):
            end = flow.completion_time if flow.completion_time is not None else self.time
            duration = max(1e-9, end - flow.start_time)
            result.append(
                FlowStats(
                    flow_id=flow.flow_id,
                    start_time=flow.start_time,
                    completion_time=flow.completion_time,
                    bytes_sent=flow.bytes_sent,
                    mean_rate_bps=flow.bytes_sent * 8.0 / duration,
                )
            )
        return result

    def utilisation(self) -> Dict[LinkKey, float]:
        """Instantaneous link utilisation under the current rates."""
        rates = self.current_rates()
        return link_utilisation(list(self._flows.values()), rates, self._capacities)
