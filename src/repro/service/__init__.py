"""Provisioning-as-a-service: the asyncio control plane over live sessions.

Layout:

* :mod:`repro.service.daemon` — :class:`ControlPlane`, the per-group
  worker loop, and delta batching into single recompile transactions,
* :mod:`repro.service.admission` — per-tenant outstanding/rate limits,
* :mod:`repro.service.state` — frozen committed-state snapshots for the
  query API.

See ``README.md`` in this directory for a quickstart.
"""

from .admission import AdmissionError, AdmissionPolicy, TenantGate
from .daemon import ControlPlane, Ticket
from .state import BatchRecord, GroupState, StatementState, TenantStats

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "TenantGate",
    "ControlPlane",
    "Ticket",
    "BatchRecord",
    "GroupState",
    "StatementState",
    "TenantStats",
]
