"""Per-tenant admission control for the provisioning control plane.

A multi-tenant daemon cannot let one chatty tenant monopolize the shared
recompile pipeline: every queued delta holds an undo-journal transaction
slot and delays every other tenant's batch.  :class:`AdmissionPolicy`
bounds each tenant two ways — a ceiling on *outstanding* deltas (submitted
but not yet committed or failed) and a token-bucket rate cap on submission
frequency — and :class:`TenantGate` is the mutable per-tenant state
enforcing it.  Rejection happens in ``ControlPlane.submit`` *before* the
delta enters the intake queue, so an over-limit tenant can never disturb
committed state or other tenants' in-flight batches.

The gate takes an injectable monotonic clock so rate-cap behavior is
deterministic under test (and under replay).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import MerlinError

__all__ = ["AdmissionError", "AdmissionPolicy", "TenantGate"]


class AdmissionError(MerlinError):
    """A tenant's submission was refused before entering the intake queue."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits applied to each tenant of a group independently.

    ``max_outstanding`` — how many of the tenant's deltas may be queued or
    in flight at once (``None`` = unlimited).  ``rate_per_second`` — a
    token-bucket refill rate capping sustained submission frequency
    (``None`` = uncapped), with ``burst`` tokens of headroom for
    back-to-back submissions.
    """

    max_outstanding: Optional[int] = None
    rate_per_second: Optional[float] = None
    burst: int = 1

    def __post_init__(self) -> None:
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1 (or None)")
        if self.rate_per_second is not None and self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be > 0 (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TenantGate:
    """Mutable admission state for one tenant under one policy.

    ``admit`` either raises :class:`AdmissionError` (leaving the gate
    unchanged except for the token-bucket refill) or records one more
    outstanding delta; ``settle`` retires one when its batch commits or
    fails.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._policy = policy
        self._clock = clock
        self._tokens = float(policy.burst)
        self._refilled_at = clock()
        self.outstanding = 0

    def admit(self, tenant: str) -> None:
        policy = self._policy
        if (
            policy.max_outstanding is not None
            and self.outstanding >= policy.max_outstanding
        ):
            raise AdmissionError(
                f"tenant {tenant!r} already has {self.outstanding} outstanding "
                f"delta(s) (limit {policy.max_outstanding}); await or discard "
                "a ticket before submitting more"
            )
        if policy.rate_per_second is not None:
            now = self._clock()
            elapsed = max(0.0, now - self._refilled_at)
            self._refilled_at = now
            self._tokens = min(
                float(policy.burst),
                self._tokens + elapsed * policy.rate_per_second,
            )
            if self._tokens < 1.0:
                raise AdmissionError(
                    f"tenant {tenant!r} exceeded the submission rate cap of "
                    f"{policy.rate_per_second}/s (burst {policy.burst})"
                )
            self._tokens -= 1.0
        self.outstanding += 1

    def settle(self) -> None:
        self.outstanding = max(0, self.outstanding - 1)
