"""The provisioning control plane: long-lived sessions behind async intake.

The paper's compiler is a batch tool; a provider runs it as a *service* —
one live incremental session per tenant group, absorbing a stream of
policy/topology deltas from many tenants at once.  :class:`ControlPlane`
is that daemon:

* ``open_group`` compiles a group's base policy (off the event loop, via
  ``asyncio.to_thread``) and keeps the resulting
  :class:`~repro.core.session.ProvisioningSession` live;
* ``submit`` runs per-tenant admission control (see
  :mod:`repro.service.admission`) and enqueues the delta, returning a
  :class:`Ticket` whose ``result()`` resolves to the batch's
  :class:`~repro.core.allocation.CompilationResult`;
* one worker task per group drains its queue and *batches*: deltas that
  arrived while the previous transaction was solving are merged — when
  their touched statement sets are disjoint
  (:func:`~repro.incremental.delta.merge_policy_deltas`) — into a single
  recompile transaction: one undo-journal checkpoint, one partitioned
  solve, one commit.  A merged transaction that fails rolls back (the
  journal restores pre-batch state exactly) and the members are retried
  individually, so one tenant's infeasible ask cannot sink its
  batch-mates;
* ``query`` / ``statement_state`` return frozen committed-state snapshots
  (per-statement paths and rates, revision, last batch's solver
  statistics) without touching the live session.

Deltas for *different* groups run concurrently (one worker each); deltas
for one group serialize through its queue, which is what makes batching
safe.  The control plane must be used from within a single running event
loop — ``async with ControlPlane() as plane: ...`` is the intended shape.

The daemon carries its own :class:`~repro.telemetry.Telemetry` bundle
(metrics-only by default, sharing the injected ``clock``): every batch
executes inside a ``batch`` span that covers queue-wait accounting, delta
merging, the recompile transaction, and the commit, so the compiler's own
spans and counters nest under it (``asyncio.to_thread`` copies the
context).  ``metrics()`` freezes the registry into a
:class:`~repro.telemetry.MetricsSnapshot` — the operational counterpart
of :class:`~repro.service.state.GroupState` — without touching the live
sessions.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Callable, Dict, List, Optional, Tuple

from .. import telemetry as _telemetry
from ..core.compiler import MerlinCompiler
from ..core.options import ProvisionOptions
from ..errors import ProvisioningError
from ..fabric import ComponentSolutionCache, SolveFabric
from ..incremental.delta import PolicyDelta, merge_policy_deltas
from ..telemetry import MetricsRegistry, MetricsSnapshot, Telemetry
from .admission import AdmissionPolicy, TenantGate
from .state import BatchRecord, GroupState, StatementState, TenantStats, statement_states

__all__ = ["ControlPlane", "Ticket"]

#: Queue sentinel: the worker processes everything ahead of it, then exits.
_SHUTDOWN = object()


class Ticket:
    """A pending submission; ``await ticket.result()`` for the outcome.

    The result is the full :class:`CompilationResult` of the transaction
    that committed the delta (possibly a merged batch containing other
    tenants' deltas too).  A failed delta raises the transaction's error
    here; the group's committed state is untouched by the failure.
    """

    __slots__ = ("group", "tenant", "delta", "submitted_at", "_future")

    def __init__(
        self,
        group: str,
        tenant: str,
        delta: object,
        future: "asyncio.Future",
        submitted_at: float = 0.0,
    ) -> None:
        self.group = group
        self.tenant = tenant
        self.delta = delta
        #: Control-plane clock reading at ``submit``; the batch span
        #: subtracts it to observe this ticket's queue wait.
        self.submitted_at = submitted_at
        self._future = future

    async def result(self):
        return await self._future

    def done(self) -> bool:
        return self._future.done()


class _Group:
    """Mutable per-group state, owned by the control plane's event loop."""

    def __init__(
        self,
        name: str,
        compiler: MerlinCompiler,
        admission: AdmissionPolicy,
        base_result,
    ) -> None:
        self.name = name
        self.compiler = compiler
        self.handle = compiler.session()
        self.admission = admission
        self.revision = 0
        self.statements: Dict[str, StatementState] = statement_states(base_result)
        self.last_batch: Optional[BatchRecord] = None
        self.queue: "asyncio.Queue" = asyncio.Queue()
        self.gates: Dict[str, TenantGate] = {}
        self.counters: Dict[str, Dict[str, int]] = {}
        self.worker: Optional["asyncio.Task"] = None

    def tenant_counters(self, tenant: str) -> Dict[str, int]:
        return self.counters.setdefault(
            tenant, {"submitted": 0, "committed": 0, "rejected": 0, "failed": 0}
        )


class ControlPlane:
    """One daemon, many tenant groups, one live session per group.

    ``admission`` is the default :class:`AdmissionPolicy` for every group
    (overridable per group at ``open_group``); ``clock`` feeds the
    admission token buckets *and* the daemon's telemetry bundle, and
    exists to be replaced in tests; ``max_batch`` caps how many queued
    deltas one transaction may absorb.  Pass ``telemetry`` to trace
    batches too (e.g. ``Telemetry.recording(clock=clock)``); the default
    is metrics-only, queryable via :meth:`metrics`.

    The plane also owns the *solve fabric* for its groups: pass a
    :class:`~repro.fabric.SolveFabric` (shared with other planes or
    sessions), or ``fabric_workers=N`` to have the plane create — and, at
    :meth:`shutdown`, reap — its own persistent pool.  A
    :class:`~repro.fabric.ComponentSolutionCache` passed as
    ``component_cache`` is likewise injected into every group's compiler,
    so identical components across tenant groups solve once; its
    ``component_signature_*`` counters land in :meth:`metrics` because
    batches run inside this plane's telemetry bundle.
    """

    def __init__(
        self,
        *,
        admission: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        max_batch: int = 16,
        telemetry: Optional[Telemetry] = None,
        fabric: Optional[SolveFabric] = None,
        fabric_workers: Optional[int] = None,
        component_cache: Optional[ComponentSolutionCache] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._admission = admission if admission is not None else AdmissionPolicy()
        self._clock = clock
        self._max_batch = max_batch
        self._telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(metrics=MetricsRegistry(), clock=clock)
        )
        self._owns_fabric = fabric is None and fabric_workers is not None
        if self._owns_fabric:
            fabric = SolveFabric(max_workers=fabric_workers)
        self._fabric = fabric
        self._component_cache = component_cache
        self._groups: Dict[str, _Group] = {}
        self._started = False
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "ControlPlane":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    def start(self) -> None:
        """Start (or resume) one worker task per open group.

        Deltas may be submitted before ``start()``; they queue up and are
        drained — batched — once the workers run.
        """
        self._started = True
        self._closing = False
        for group in self._groups.values():
            if group.worker is None:
                group.worker = asyncio.ensure_future(self._worker(group))

    async def shutdown(self) -> None:
        """Process every queued delta, then stop all workers.

        A fabric the plane created itself (``fabric_workers=...``) has its
        worker processes reaped too; it respawns lazily if the plane is
        started again.  A caller-supplied fabric is left alone — its
        lifecycle belongs to the caller.
        """
        self._closing = True
        workers = []
        for group in self._groups.values():
            if group.worker is not None:
                group.queue.put_nowait(_SHUTDOWN)
                workers.append(group)
        for group in workers:
            await group.worker
            group.worker = None
        self._started = False
        if self._owns_fabric and self._fabric is not None:
            await asyncio.to_thread(self._fabric.shutdown)

    async def open_group(
        self,
        name: str,
        policy,
        *,
        compiler: Optional[MerlinCompiler] = None,
        topology=None,
        placements=None,
        options=None,
        admission: Optional[AdmissionPolicy] = None,
        **compiler_kwargs,
    ) -> GroupState:
        """Compile a group's base policy and open its live session.

        Pass a ready ``compiler``, or a ``topology`` (plus optional
        ``placements`` / ``options`` / further :class:`MerlinCompiler`
        keywords) to build one.  The compile runs in a thread so the event
        loop — and the other groups' intake — stays responsive.

        The plane's solve fabric and component cache (when configured) are
        injected into the group's options unless the options already carry
        their own — a group can opt out of the shared cache by passing
        ``options=ProvisionOptions(component_cache=...)`` explicitly.
        """
        if name in self._groups:
            raise ProvisioningError(f"group {name!r} is already open")
        if compiler is None:
            if topology is None:
                raise ProvisioningError(
                    "open_group needs either a compiler or a topology"
                )
            compiler = MerlinCompiler(
                topology=topology,
                placements=placements or {},
                options=self._inject_fabric(options),
                **compiler_kwargs,
            )
        else:
            compiler.options = self._inject_fabric(compiler.options)
        with self._telemetry.use():
            # to_thread copies the context, so the compile's spans and
            # counters land in this plane's bundle.
            result = await asyncio.to_thread(compiler.compile, policy)
            _telemetry.counter("groups_opened")
        group = _Group(
            name,
            compiler,
            admission if admission is not None else self._admission,
            result,
        )
        self._groups[name] = group
        if self._started:
            group.worker = asyncio.ensure_future(self._worker(group))
        return self.query(name)

    def _inject_fabric(
        self, options: Optional[ProvisionOptions]
    ) -> Optional[ProvisionOptions]:
        """Fill a group's unset ``fabric`` / ``component_cache`` fields
        with the plane's own (explicit per-group settings win)."""
        if self._fabric is None and self._component_cache is None:
            return options
        resolved = options if options is not None else ProvisionOptions()
        overrides = {}
        if self._fabric is not None and resolved.fabric is None:
            overrides["fabric"] = self._fabric
        if self._component_cache is not None and resolved.component_cache is None:
            overrides["component_cache"] = self._component_cache
        return dataclasses.replace(resolved, **overrides) if overrides else resolved

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit(self, name: str, delta, *, tenant: str = "default") -> Ticket:
        """Admit one tenant delta into a group's intake queue.

        Raises :class:`~repro.service.admission.AdmissionError` when the
        tenant is over its outstanding or rate limit — before the delta
        touches the queue, so committed state and other tenants are
        undisturbed.  ``delta`` is anything ``ProvisioningSession.apply``
        accepts: a :class:`PolicyDelta`, a ``TopologyDelta``, or an object
        with ``to_delta()`` (scenario events).
        """
        if self._closing:
            raise ProvisioningError("the control plane is shutting down")
        group = self._group(name)
        counters = group.tenant_counters(tenant)
        counters["submitted"] += 1
        gate = group.gates.get(tenant)
        if gate is None:
            gate = group.gates[tenant] = TenantGate(
                group.admission, clock=self._clock
            )
        metrics = self._telemetry.metrics
        try:
            gate.admit(tenant)
        except Exception:
            counters["rejected"] += 1
            if metrics is not None:
                metrics.counter("admission_rejected", group=name, tenant=tenant)
            raise
        if metrics is not None:
            metrics.counter("admission_admitted", group=name, tenant=tenant)
        future = asyncio.get_running_loop().create_future()
        ticket = Ticket(name, tenant, delta, future, submitted_at=self._clock())
        group.queue.put_nowait(ticket)
        return ticket

    # ------------------------------------------------------------------
    # query surface
    # ------------------------------------------------------------------
    def groups(self) -> Tuple[str, ...]:
        return tuple(self._groups)

    def query(self, name: str) -> GroupState:
        """A frozen snapshot of a group's last *committed* state."""
        group = self._group(name)
        return GroupState(
            group=name,
            revision=group.revision,
            statements=dict(group.statements),
            failed_links=group.handle.failed_links,
            failed_nodes=group.handle.failed_nodes,
            last_batch=group.last_batch,
            tenants={
                tenant: TenantStats(tenant=tenant, **counts)
                for tenant, counts in group.counters.items()
            },
        )

    def metrics(self) -> MetricsSnapshot:
        """A frozen snapshot of the daemon's metrics registry.

        The operational sibling of :meth:`query`: admission decisions,
        queue waits, batch sizes and outcomes, plus everything the
        compiler and solver backends counted while running inside the
        plane's batches (cache hits, slack retries, per-backend solve
        seconds, ...).  Empty when the plane was built with a
        metrics-less :class:`~repro.telemetry.Telemetry`.
        """
        return self._telemetry.snapshot()

    def statement_state(self, name: str, identifier: str) -> StatementState:
        group = self._group(name)
        try:
            return group.statements[identifier]
        except KeyError:
            raise ProvisioningError(
                f"group {name!r} has no committed statement {identifier!r}"
            ) from None

    # ------------------------------------------------------------------
    # the per-group worker
    # ------------------------------------------------------------------
    async def _worker(self, group: _Group) -> None:
        while True:
            first = await group.queue.get()
            batch = [first]
            while len(batch) < self._max_batch:
                try:
                    batch.append(group.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stop = _SHUTDOWN in batch
            tickets = [item for item in batch if item is not _SHUTDOWN]
            for run in self._plan_runs(tickets):
                await self._execute(group, run)
            if stop:
                return

    def _plan_runs(self, tickets: List[Ticket]) -> List[List[Ticket]]:
        """Split a drained batch into mergeable runs, preserving order.

        Consecutive :class:`PolicyDelta` submissions with pairwise-disjoint
        touched statements form one run (one merged transaction); a delta
        overlapping its run, a topology delta, or a ``to_delta`` event
        closes the run and executes alone.
        """
        runs: List[List[Ticket]] = []
        current: List[Ticket] = []
        touched: set = set()
        for ticket in tickets:
            delta = ticket.delta
            if isinstance(delta, PolicyDelta):
                mine = delta.touched_identifiers()
                if current and not (touched & mine):
                    current.append(ticket)
                    touched |= mine
                    continue
                if current:
                    runs.append(current)
                current = [ticket]
                touched = set(mine)
            else:
                if current:
                    runs.append(current)
                    current = []
                    touched = set()
                runs.append([ticket])
        if current:
            runs.append(current)
        return runs

    async def _execute(self, group: _Group, run: List[Ticket]) -> None:
        retry = False
        with self._telemetry.use():
            with _telemetry.span(
                "batch", group=group.name, deltas=len(run), merged=len(run) > 1
            ) as batch_span:
                # Queue wait: submit() to this batch span opening, on the
                # plane's clock.  A ticket retried after a merged-batch
                # failure is observed again with its longer wait — its
                # individual execution really did start that much later.
                waits = tuple(
                    max(0.0, batch_span.start - ticket.submitted_at)
                    for ticket in run
                )
                for wait in waits:
                    _telemetry.observe("queue_wait_seconds", wait, group=group.name)
                if len(run) == 1:
                    ticket = run[0]
                    try:
                        result = await asyncio.to_thread(
                            group.handle.apply, ticket.delta
                        )
                    except Exception as exc:
                        batch_span.annotate(error=type(exc).__name__)
                        _telemetry.counter("batches_failed", group=group.name)
                        self._fail(group, ticket, exc)
                    else:
                        self._commit(
                            group,
                            run,
                            result,
                            merged=False,
                            started=batch_span.start,
                            queue_waits=waits,
                        )
                    return
                with _telemetry.span("merge", deltas=len(run)):
                    merged = merge_policy_deltas([ticket.delta for ticket in run])
                try:
                    result = await asyncio.to_thread(group.handle.apply, merged)
                except Exception:
                    # The merged transaction rolled back to pre-batch state;
                    # retry each member alone (outside this span, as its own
                    # batch) so only the actual offender fails.
                    batch_span.annotate(retried_individually=True)
                    _telemetry.counter("batch_splits", group=group.name)
                    retry = True
                else:
                    self._commit(
                        group,
                        run,
                        result,
                        merged=True,
                        started=batch_span.start,
                        queue_waits=waits,
                    )
        if retry:
            for ticket in run:
                await self._execute(group, [ticket])

    def _commit(
        self,
        group: _Group,
        run: List[Ticket],
        result,
        merged: bool,
        started: float = 0.0,
        queue_waits: Tuple[float, ...] = (),
    ) -> None:
        group.revision += 1
        group.statements = statement_states(result)
        _telemetry.counter("batches_committed", group=group.name)
        _telemetry.observe("batch_deltas", float(len(run)), group=group.name)
        group.last_batch = BatchRecord(
            revision=group.revision,
            tenants=tuple(ticket.tenant for ticket in run),
            num_deltas=len(run),
            num_changes=sum(
                ticket.delta.num_changes()
                for ticket in run
                if hasattr(ticket.delta, "num_changes")
            ),
            merged=merged,
            statistics=result.statistics,
            execute_seconds=max(0.0, self._clock() - started),
            queue_wait_seconds=queue_waits,
        )
        for ticket in run:
            group.tenant_counters(ticket.tenant)["committed"] += 1
            self._settle(group, ticket)
            if not ticket._future.done():
                ticket._future.set_result(result)

    def _fail(self, group: _Group, ticket: Ticket, exc: BaseException) -> None:
        group.tenant_counters(ticket.tenant)["failed"] += 1
        self._settle(group, ticket)
        if not ticket._future.done():
            ticket._future.set_exception(exc)

    def _settle(self, group: _Group, ticket: Ticket) -> None:
        gate = group.gates.get(ticket.tenant)
        if gate is not None:
            gate.settle()

    def _group(self, name: str) -> _Group:
        try:
            return self._groups[name]
        except KeyError:
            raise ProvisioningError(f"no open group named {name!r}") from None
