"""Immutable snapshots of control-plane state for the query API.

The daemon's worker mutates live compiler sessions; queries must never
hand a caller a reference into that mutable state (a snapshot taken
mid-batch would tear).  These frozen dataclasses are rebuilt at each batch
commit from the transaction's :class:`~repro.core.allocation.CompilationResult`,
so ``ControlPlane.query`` is a cheap dict copy of already-frozen values
and always reflects a *committed* revision — never a transaction that may
still roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.allocation import CompilationResult, CompilationStatistics

__all__ = [
    "BatchRecord",
    "GroupState",
    "StatementState",
    "TenantStats",
    "statement_states",
]


@dataclass(frozen=True)
class StatementState:
    """One statement's committed allocation: its path and localized rates."""

    identifier: str
    path: Tuple[str, ...]
    guarantee_bps: Optional[float] = None
    cap_bps: Optional[float] = None

    @property
    def is_guaranteed(self) -> bool:
        return self.guarantee_bps is not None and self.guarantee_bps > 0


@dataclass(frozen=True)
class BatchRecord:
    """What one committed recompile transaction contained.

    ``num_deltas`` > 1 with ``merged`` True is the observable proof that
    concurrently-submitted tenant deltas were batched into a single solve:
    ``statistics`` is the one :class:`CompilationStatistics` the whole
    batch produced.  ``execute_seconds`` is the duration of the batch's
    telemetry span (merge + solve + commit, on the control plane's clock);
    ``queue_wait_seconds`` holds each member ticket's wait between
    ``submit`` and the batch span opening, in submission order.
    """

    revision: int
    tenants: Tuple[str, ...]
    num_deltas: int
    num_changes: int
    merged: bool
    statistics: CompilationStatistics
    execute_seconds: float = 0.0
    queue_wait_seconds: Tuple[float, ...] = ()

    @property
    def backends(self) -> Tuple[str, ...]:
        """Which solver backend handled each re-solved component.

        Per-component names in the provisioning result's component order
        (see ``CompilationStatistics.component_backends``); empty when the
        batch re-solved nothing (e.g. a cap-only update).
        """
        return tuple(self.statistics.component_backends)


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant accounting: submissions and how each one ended."""

    tenant: str
    submitted: int = 0
    committed: int = 0
    rejected: int = 0
    failed: int = 0


@dataclass(frozen=True)
class GroupState:
    """A committed-state snapshot of one tenant group's session."""

    group: str
    revision: int
    statements: Mapping[str, StatementState] = field(default_factory=dict)
    failed_links: frozenset = frozenset()
    failed_nodes: frozenset = frozenset()
    last_batch: Optional[BatchRecord] = None
    tenants: Mapping[str, TenantStats] = field(default_factory=dict)

    @property
    def num_statements(self) -> int:
        return len(self.statements)


def statement_states(result: CompilationResult) -> Dict[str, StatementState]:
    """Freeze a compilation result's allocations into query-safe state.

    Statements carried by a shared sink tree have no per-statement path
    assignment; they appear with an empty path and their rates.
    """
    states: Dict[str, StatementState] = {}
    for identifier, allocation in result.rates.items():
        assignment = result.paths.get(identifier)
        states[identifier] = StatementState(
            identifier=identifier,
            path=tuple(assignment.path) if assignment is not None else (),
            guarantee_bps=(
                allocation.guarantee.bps_value
                if allocation.guarantee is not None
                else None
            ),
            cap_bps=(
                allocation.cap.bps_value if allocation.cap is not None else None
            ),
        )
    return states
