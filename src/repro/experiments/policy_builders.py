"""Policy construction for the expressiveness and scalability experiments.

The five Figure 4 policies are built programmatically on the Stanford-like
campus topology (§6.1):

1. **Baseline** — all-pairs connectivity.
2. **Bandwidth** — baseline plus guarantees (1 Mbps) and caps (1 Gbps) for a
   fraction of the traffic classes.
3. **Firewall** — incoming web traffic is forced through a DPI middlebox.
4. **Monitoring middlebox** — hosts are split into two zones; cross-zone
   traffic must traverse a monitoring middlebox.
5. **Combination** — connectivity + web filter + guarantees + inspection.

The same builders serve the scalability experiments (Figures 7 and 8), which
need all-pairs policies with a guaranteed subset on arbitrary topologies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.ast import (
    BandwidthTerm,
    FMax,
    FMin,
    Formula,
    Policy,
    Statement,
    formula_and,
)
from ..predicates.ast import FieldTest, Predicate, pred_and, pred_not
from ..regex.ast import any_path
from ..regex.parser import parse_path_expression
from ..topology.graph import Topology
from ..topology.generators import stanford_campus
from ..topology.traffic import TrafficClass, all_pairs_traffic, select_guaranteed
from ..units import Bandwidth


def _pair_predicate(topology: Topology, source: str, destination: str) -> Predicate:
    """``eth.src = <source MAC> and eth.dst = <destination MAC>``."""
    return pred_and(
        FieldTest("eth.src", topology.node(source).mac),
        FieldTest("eth.dst", topology.node(destination).mac),
    )


def statements_for_classes(
    topology: Topology,
    classes: Sequence[TrafficClass],
    path_source: str = ".*",
    extra_predicate: Optional[Predicate] = None,
) -> Tuple[List[Statement], List[Formula]]:
    """One statement per traffic class, plus min/max clauses for guaranteed ones."""
    path = parse_path_expression(path_source)
    statements: List[Statement] = []
    clauses: List[Formula] = []
    for index, traffic_class in enumerate(classes):
        identifier = f"t{index}"
        predicate = _pair_predicate(
            topology, traffic_class.source, traffic_class.destination
        )
        if extra_predicate is not None:
            predicate = pred_and(predicate, extra_predicate)
        statements.append(Statement(identifier, predicate, path))
        term = BandwidthTerm(identifiers=(identifier,))
        if traffic_class.guarantee is not None:
            clauses.append(FMin(term, traffic_class.guarantee))
        if traffic_class.cap is not None:
            clauses.append(FMax(term, traffic_class.cap))
    return statements, clauses


def all_pairs_policy(
    topology: Topology,
    guarantee_fraction: float = 0.0,
    guarantee: Bandwidth = Bandwidth.mbps(1),
    cap: Optional[Bandwidth] = None,
    seed: int = 0,
    max_classes: Optional[int] = None,
) -> Policy:
    """All-pairs connectivity, optionally with a guaranteed subset of classes."""
    classes = all_pairs_traffic(topology)
    if max_classes is not None:
        classes = classes[:max_classes]
    if guarantee_fraction > 0:
        classes = select_guaranteed(classes, guarantee_fraction, guarantee, cap, seed)
    statements, clauses = statements_for_classes(topology, classes)
    return Policy(statements=tuple(statements), formula=formula_and(*clauses))


# ---------------------------------------------------------------------------
# The five Figure 4 policies
# ---------------------------------------------------------------------------


def stanford_with_middleboxes(subnets: int = 24) -> Topology:
    """The Stanford-like campus topology with DPI/monitor middleboxes attached.

    A DPI middlebox hangs off each backbone router (used by the firewall and
    combination policies) and a monitoring middlebox hangs off the first two
    zone routers (used by the monitoring policy).
    """
    topology = stanford_campus(subnets=subnets)
    topology.add_middlebox("dpi1", attached_switch="bbra_rtr")
    topology.add_link("dpi1", "bbra_rtr")
    topology.add_middlebox("dpi2", attached_switch="bbrb_rtr")
    topology.add_link("dpi2", "bbrb_rtr")
    topology.add_middlebox("mon1", attached_switch="zone1_rtr")
    topology.add_link("mon1", "zone1_rtr")
    topology.add_middlebox("mon2", attached_switch="zone2_rtr")
    topology.add_link("mon2", "zone2_rtr")
    return topology


#: Function placement map used by the Figure 4 policies.
FIGURE4_PLACEMENTS: Dict[str, Tuple[str, ...]] = {
    "dpi": ("dpi1", "dpi2"),
    "monitor": ("mon1", "mon2"),
}


def baseline_policy(topology: Topology) -> Policy:
    """Figure 4 policy 1: all-pairs connectivity."""
    return all_pairs_policy(topology)


def bandwidth_policy(
    topology: Topology,
    guarantee_fraction: float = 0.10,
    guarantee: Bandwidth = Bandwidth.mbps(1),
    cap: Bandwidth = Bandwidth.gbps(1),
    seed: int = 0,
) -> Policy:
    """Figure 4 policy 2: connectivity plus caps and guarantees for a fraction
    of the traffic classes (e.g. prioritised emergency messages)."""
    return all_pairs_policy(
        topology,
        guarantee_fraction=guarantee_fraction,
        guarantee=guarantee,
        cap=cap,
        seed=seed,
    )


def firewall_policy(topology: Topology) -> Policy:
    """Figure 4 policy 3: incoming web traffic must traverse a DPI middlebox."""
    classes = all_pairs_traffic(topology)
    web = FieldTest("tcp.dst", 80)
    web_statements, _ = statements_for_classes(
        topology, classes, path_source=".* dpi .*", extra_predicate=web
    )
    other_statements, _ = statements_for_classes(
        topology, classes, path_source=".*", extra_predicate=pred_not(web)
    )
    renamed = [
        Statement(f"w{index}", statement.predicate, statement.path)
        for index, statement in enumerate(web_statements)
    ]
    return Policy(statements=tuple(renamed + other_statements))


def monitoring_policy(topology: Topology) -> Policy:
    """Figure 4 policy 4: traffic between the two host zones passes a monitor."""
    hosts = topology.host_names()
    half = len(hosts) // 2
    zone_a, zone_b = set(hosts[:half]), set(hosts[half:])
    monitored = parse_path_expression(".* monitor .*")
    direct = any_path()
    statements: List[Statement] = []
    index = 0
    for source in hosts:
        for destination in hosts:
            if source == destination:
                continue
            crosses = (source in zone_a) != (destination in zone_a)
            statements.append(
                Statement(
                    f"m{index}",
                    _pair_predicate(topology, source, destination),
                    monitored if crosses else direct,
                )
            )
            index += 1
    return Policy(statements=tuple(statements))


def combination_policy(
    topology: Topology,
    guarantee_fraction: float = 0.10,
    guarantee: Bandwidth = Bandwidth.mbps(1),
    seed: int = 0,
) -> Policy:
    """Figure 4 policy 5: web filtering + bandwidth guarantees + inspection."""
    classes = all_pairs_traffic(topology)
    guaranteed_classes = select_guaranteed(classes, guarantee_fraction, guarantee, seed=seed)
    web = FieldTest("tcp.dst", 80)
    statements: List[Statement] = []
    clauses: List[Formula] = []
    hosts = topology.host_names()
    inspected_hosts = set(hosts[: max(1, len(hosts) // 4)])
    for index, traffic_class in enumerate(guaranteed_classes):
        base_predicate = _pair_predicate(
            topology, traffic_class.source, traffic_class.destination
        )
        # Web traffic of this pair goes through the DPI filter.
        statements.append(
            Statement(
                f"web{index}",
                pred_and(base_predicate, web),
                parse_path_expression(".* dpi .*"),
            )
        )
        # Remaining traffic: inspected if the source is an untrusted host.
        path = (
            parse_path_expression(".* monitor .*")
            if traffic_class.source in inspected_hosts
            else any_path()
        )
        identifier = f"rest{index}"
        statements.append(
            Statement(identifier, pred_and(base_predicate, pred_not(web)), path)
        )
        if traffic_class.guarantee is not None:
            clauses.append(
                FMin(BandwidthTerm(identifiers=(identifier,)), traffic_class.guarantee)
            )
    return Policy(statements=tuple(statements), formula=formula_and(*clauses))


#: The Merlin source-code sizes reported in §6.1 for the five policies.
FIGURE4_POLICY_LOC = {
    "baseline": 6,
    "bandwidth": 11,
    "firewall": 23,
    "monitoring": 11,
    "combination": 23,
}
