"""Experiment drivers reproducing the paper's evaluation (§6).

Each module builds the workloads, policies, and topologies of one experiment
and returns plain data (rows / series) that the benchmark harness under
``benchmarks/`` times and prints, and that ``EXPERIMENTS.md`` records.

* :mod:`repro.experiments.policy_builders` — the five Figure 4 policies and
  generic all-pairs / guaranteed-subset policy construction.
* :mod:`repro.experiments.expressiveness` — Figure 4 (policy size vs emitted
  instruction counts).
* :mod:`repro.experiments.applications` — the Hadoop (§6.2) and Ring Paxos
  (Figure 5) end-to-end experiments on the flow simulator.
* :mod:`repro.experiments.zoo` — Figure 6 (Topology-Zoo compilation times).
* :mod:`repro.experiments.scaling` — Figures 7 and 8 (fat-tree / balanced-tree
  compilation-time scaling).
* :mod:`repro.experiments.verification` — Figure 9 (negotiator verification
  scaling).
* :mod:`repro.experiments.adaptation` — Figure 10 (AIMD / MMFS adaptation).
* :mod:`repro.experiments.reprovisioning` — Figure 10b' (incremental
  re-provisioning latency vs full recompiles on pod-tenant fat trees).
"""

from .policy_builders import (
    all_pairs_policy,
    bandwidth_policy,
    combination_policy,
    firewall_policy,
    monitoring_policy,
    stanford_with_middleboxes,
)

__all__ = [
    "all_pairs_policy",
    "bandwidth_policy",
    "combination_policy",
    "firewall_policy",
    "monitoring_policy",
    "stanford_with_middleboxes",
]
