"""Figure 10 (b') — incremental re-provisioning latency vs full recompiles.

The paper's adaptation experiment (Figure 10) shows that bandwidth
re-allocation needs no recompilation.  This companion experiment measures
the remaining case: adaptations that *do* change paths.  A fat tree hosts
one tenant per pod, each with bandwidth-guaranteed traffic constrained to
its own pod (the pod-local path expressions make the tenants' MIPs
link-disjoint).  A delta of ``d`` statements — new guaranteed traffic in
``d`` distinct pods — is then provisioned two ways:

* **full**: a from-scratch ``MerlinCompiler.compile()`` of the extended
  policy (what the seed code base had to do), and
* **incremental**: ``MerlinCompiler.recompile(delta)`` — splice the new
  statements into the live provisioning model and re-solve only the ``d``
  dirty pod components, re-using the other pods' cached solutions.

Both produce identical paths and reservations (asserted per row); the
interesting output is the latency ratio as a function of delta size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .. import telemetry
from ..core.ast import (
    BandwidthTerm,
    FMin,
    Policy,
    Statement,
    formula_and,
    formula_clauses,
)
from ..core.compiler import MerlinCompiler
from ..incremental.delta import DeltaStatement, PolicyDelta
from ..predicates.ast import FieldTest, pred_and
from ..regex.ast import Regex, Symbol, any_path, star, union
from ..topology.generators import fat_tree
from ..topology.graph import Topology
from ..units import Bandwidth


@dataclass
class PodTenantScenario:
    """A fat tree with one pod-local tenant policy per pod."""

    topology: Topology
    policy: Policy
    pods: List[Dict[str, List[str]]]
    guarantee: Bandwidth


@dataclass
class ReprovisionRow:
    """One row of the incremental-vs-full latency table."""

    arity: int
    statements: int
    partitions: int
    delta_size: int
    dirty_partitions: int
    full_ms: float
    incremental_ms: float
    speedup: float
    identical: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "arity": self.arity,
            "statements": self.statements,
            "partitions": self.partitions,
            "delta_size": self.delta_size,
            "dirty_partitions": self.dirty_partitions,
            "full_ms": self.full_ms,
            "incremental_ms": self.incremental_ms,
            "speedup": self.speedup,
            "identical": self.identical,
        }


def _fat_tree_pods(topology: Topology, arity: int) -> List[Dict[str, List[str]]]:
    """Each pod's aggregation switches, edge switches, and hosts, by name."""
    pods = []
    for pod in range(arity):
        edges = sorted(
            name for name in topology.switch_names() if name.startswith(f"e{pod}_")
        )
        aggregations = sorted(
            name for name in topology.switch_names() if name.startswith(f"a{pod}_")
        )
        hosts = sorted(
            (host for edge in edges for host in topology.hosts_on_switch(edge)),
            key=lambda name: int(name[1:]),
        )
        pods.append({"aggregation": aggregations, "edge": edges, "hosts": hosts})
    return pods


def _pod_path(pod: Dict[str, List[str]], source: str, destination: str) -> Regex:
    """``(src|dst|pod edge switches|pod aggregation switches)*`` — traffic may
    roam its own pod but can never leave it (no core switches, no other
    pods), which is what keeps the tenants' MIP components link-disjoint."""
    locations = sorted({source, destination, *pod["edge"], *pod["aggregation"]})
    return star(union(*[Symbol(location) for location in locations]))


def _pair_predicate(
    topology: Topology, source: str, destination: str, port: int
):
    return pred_and(
        FieldTest("eth.src", topology.node(source).mac),
        pred_and(
            FieldTest("eth.dst", topology.node(destination).mac),
            FieldTest("tcp.dst", port),
        ),
    )


def _pod_statement(
    topology: Topology,
    pod: Dict[str, List[str]],
    identifier: str,
    source: str,
    destination: str,
    port: int,
) -> Statement:
    predicate = _pair_predicate(topology, source, destination, port)
    return Statement(identifier, predicate, _pod_path(pod, source, destination))


def unconstrained_statement(
    scenario: "PodTenantScenario",
    identifier: str = "wild",
    pod_index: int = 0,
    port: int = 7777,
) -> Statement:
    """A same-rack host pair in one pod with an unconstrained ``.*`` path.

    This is the statement shape that used to collapse the partition
    decomposition: its path expression allows every physical link, so
    without footprint tightening it glues all pod tenants into one MIP
    component.  With cost-bound tightening its footprint shrinks to links
    near its (intra-rack) optimal path and the pod tenants stay
    partition-parallel — the mixed-workload case the Figure 10b' smoke
    guards.
    """
    pod = scenario.pods[pod_index]
    hosts = pod["hosts"]
    source, destination = hosts[0], hosts[1]
    predicate = _pair_predicate(scenario.topology, source, destination, port)
    return Statement(identifier, predicate, any_path())


def pod_tenant_scenario(
    arity: int = 8,
    pairs_per_pod: int = 2,
    guarantee: Bandwidth = Bandwidth.mbps(50),
) -> PodTenantScenario:
    """One tenant per pod, ``pairs_per_pod`` guaranteed host pairs each."""
    topology = fat_tree(arity)
    pods = _fat_tree_pods(topology, arity)
    statements: List[Statement] = []
    clauses = []
    for pod_index, pod in enumerate(pods):
        hosts = pod["hosts"]
        for pair in range(pairs_per_pod):
            source = hosts[(2 * pair) % len(hosts)]
            destination = hosts[(2 * pair + 1) % len(hosts)]
            identifier = f"p{pod_index}s{pair}"
            statements.append(
                _pod_statement(
                    topology, pod, identifier, source, destination, 8000 + pair
                )
            )
            clauses.append(FMin(BandwidthTerm(identifiers=(identifier,)), guarantee))
    policy = Policy(statements=tuple(statements), formula=formula_and(*clauses))
    return PodTenantScenario(
        topology=topology, policy=policy, pods=pods, guarantee=guarantee
    )


def _delta_statements(
    scenario: PodTenantScenario, delta_size: int, generation: int
) -> List[Statement]:
    """``delta_size`` new guaranteed statements, one per distinct pod."""
    statements = []
    for index in range(delta_size):
        pod_index = index % len(scenario.pods)
        pod = scenario.pods[pod_index]
        hosts = pod["hosts"]
        source = hosts[-1]
        destination = hosts[-2]
        identifier = f"g{generation}d{index}"
        statements.append(
            _pod_statement(
                scenario.topology, pod, identifier, source, destination,
                9000 + generation * 64 + index,
            )
        )
    return statements


def _extended_policy(
    scenario: PodTenantScenario, additions: Sequence[Statement]
) -> Policy:
    clauses = list(formula_clauses(scenario.policy.formula))
    clauses.extend(
        FMin(BandwidthTerm(identifiers=(statement.identifier,)), scenario.guarantee)
        for statement in additions
    )
    return Policy(
        statements=scenario.policy.statements + tuple(additions),
        formula=formula_and(*clauses),
    )


def _same_allocations(left, right) -> bool:
    if {k: p.path for k, p in left.paths.items()} != {
        k: p.path for k, p in right.paths.items()
    }:
        return False
    reservations_left = {k: v.bps_value for k, v in left.link_reservations.items()}
    reservations_right = {k: v.bps_value for k, v in right.link_reservations.items()}
    if set(reservations_left) != set(reservations_right):
        return False
    return all(
        abs(reservations_left[key] - reservations_right[key]) <= 1e-6
        for key in reservations_left
    )


def _compiler(topology: Topology) -> MerlinCompiler:
    return MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )


def measure_reprovisioning(
    arity: int = 8,
    pairs_per_pod: int = 3,
    delta_sizes: Sequence[int] = (1, 2, 4),
    guarantee: Bandwidth = Bandwidth.mbps(50),
    repeats: int = 3,
) -> List[ReprovisionRow]:
    """The Figure-10b' table: delta size vs incremental and full latency.

    For each delta size ``d`` the *same* extended policy is provisioned both
    ways (``repeats`` times each; the row records each side's best time);
    the incremental path reverts its delta between repeats — also
    incrementally — so every measurement starts from the identical base
    session.  The engine is prepared eagerly (``prepare_incremental``), as
    a long-running controller would, so delta latencies do not include the
    one-time session setup.
    """
    scenario = pod_tenant_scenario(
        arity=arity, pairs_per_pod=pairs_per_pod, guarantee=guarantee
    )
    incremental_compiler = _compiler(scenario.topology)
    base = incremental_compiler.compile(scenario.policy)
    incremental_compiler.prepare_incremental()

    rows: List[ReprovisionRow] = []
    for generation, delta_size in enumerate(delta_sizes):
        additions = _delta_statements(scenario, delta_size, generation)
        delta = PolicyDelta(
            add=tuple(
                DeltaStatement(statement, guarantee=scenario.guarantee)
                for statement in additions
            )
        )
        revert = PolicyDelta(remove=tuple(s.identifier for s in additions))
        extended = _extended_policy(scenario, additions)

        incremental_ms = float("inf")
        full_ms = float("inf")
        incremental = full = None
        for _ in range(max(1, repeats)):
            started = telemetry.clock()
            incremental = incremental_compiler.recompile(delta)
            incremental_ms = min(
                incremental_ms, (telemetry.clock() - started) * 1000.0
            )

            fresh_compiler = _compiler(scenario.topology)
            started = telemetry.clock()
            full = fresh_compiler.compile(extended)
            full_ms = min(full_ms, (telemetry.clock() - started) * 1000.0)

            # Revert so the next repeat (and the next delta size) starts
            # from the base policy again; exercises the removal path.
            reverted = incremental_compiler.recompile(revert)
            if not _same_allocations(reverted, base):  # pragma: no cover
                raise AssertionError(
                    "reverting a delta did not restore the base state"
                )

        rows.append(
            ReprovisionRow(
                arity=arity,
                statements=len(extended.statements),
                partitions=incremental.statistics.num_partitions,
                delta_size=delta_size,
                dirty_partitions=incremental.statistics.dirty_partitions,
                full_ms=full_ms,
                incremental_ms=incremental_ms,
                speedup=full_ms / incremental_ms if incremental_ms > 0 else float("inf"),
                identical=_same_allocations(incremental, full),
            )
        )
    return rows
