"""Figure 4: expressiveness — Merlin policy size vs emitted instruction counts.

For each of the five policies the driver compiles against the Stanford-like
campus topology and reports the number of OpenFlow rules, ``tc`` commands,
and queue configurations generated, next to the (paper-reported) number of
Merlin source lines.  The absolute counts depend on the rule-encoding model
(documented in DESIGN.md); the claim being reproduced is the *shape*: a
handful of Merlin lines expands to hundreds or thousands of device-level
instructions, and only bandwidth-bearing policies emit queues and ``tc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.compiler import MerlinCompiler
from ..units import Bandwidth
from .policy_builders import (
    FIGURE4_PLACEMENTS,
    FIGURE4_POLICY_LOC,
    baseline_policy,
    bandwidth_policy,
    combination_policy,
    firewall_policy,
    monitoring_policy,
    stanford_with_middleboxes,
)


@dataclass
class ExpressivenessRow:
    """One bar group of Figure 4."""

    policy: str
    merlin_loc: int
    openflow: int
    tc: int
    queues: int
    click: int
    total: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "merlin_loc": self.merlin_loc,
            "openflow": self.openflow,
            "tc": self.tc,
            "queues": self.queues,
            "click": self.click,
            "total": self.total,
        }


def run_expressiveness_experiment(
    subnets: int = 24,
    guarantee_fraction: float = 0.10,
    guarantee: Bandwidth = Bandwidth.mbps(1),
    policies: Optional[List[str]] = None,
) -> List[ExpressivenessRow]:
    """Compile the five Figure 4 policies and collect instruction counts."""
    topology = stanford_with_middleboxes(subnets=subnets)
    builders = {
        "baseline": lambda: baseline_policy(topology),
        "bandwidth": lambda: bandwidth_policy(
            topology, guarantee_fraction=guarantee_fraction, guarantee=guarantee
        ),
        "firewall": lambda: firewall_policy(topology),
        "monitoring": lambda: monitoring_policy(topology),
        "combination": lambda: combination_policy(
            topology, guarantee_fraction=guarantee_fraction, guarantee=guarantee
        ),
    }
    selected = policies or list(builders)
    compiler = MerlinCompiler(
        topology=topology,
        placements=FIGURE4_PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
    )
    rows: List[ExpressivenessRow] = []
    for name in selected:
        policy = builders[name]()
        result = compiler.compile(policy)
        counts = result.instructions.counts()
        rows.append(
            ExpressivenessRow(
                policy=name,
                merlin_loc=FIGURE4_POLICY_LOC[name],
                openflow=counts["openflow"],
                tc=counts["tc"],
                queues=counts["queues"],
                click=counts["click"],
                total=result.instructions.total(),
            )
        )
    return rows
