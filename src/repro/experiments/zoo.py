"""Figure 6: all-pairs connectivity compilation times on the Topology Zoo.

The paper compiles a pairwise-connectivity policy for each of the 262
Internet Topology Zoo networks and reports per-topology compilation time:
under 50 ms for most, under 600 ms for all but one, and about 4 s for the
largest (754-switch) topology.  The dataset itself is not redistributable
offline, so the driver uses the statistically matched synthetic ensemble
from :func:`repro.topology.generators.topology_zoo_ensemble`.

Because the interesting quantity is forwarding-state computation (not the
O(hosts²) policy enumeration), the driver measures the rateless compilation
path directly: sink trees for every egress switch over the switch-only
subgraph, which is exactly what the all-pairs policy compiles to.

:func:`run_topology_zoo_guaranteed` is the MIP-exercising variant: a
fraction of the traffic classes receive bandwidth guarantees, so every
topology runs the full localize/provision pipeline.  It accepts a shared
:class:`~repro.core.options.ProvisionOptions` so a sweep can reuse one
:class:`~repro.fabric.SolveFabric` worker pool and one
:class:`~repro.fabric.ComponentSolutionCache` across all ensemble members —
repeated runs (or structurally repeated components) then skip straight from
content signature to stored solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .. import telemetry
from ..core.compiler import MerlinCompiler
from ..core.options import ProvisionOptions
from ..core.sink_tree import compute_sink_trees
from ..topology.generators import topology_zoo_ensemble
from ..topology.graph import Topology
from .policy_builders import all_pairs_policy


@dataclass
class ZooRow:
    """Compilation time for one topology of the ensemble."""

    name: str
    switches: int
    hosts: int
    compile_ms: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "switches": self.switches,
            "hosts": self.hosts,
            "compile_ms": self.compile_ms,
        }


def compile_connectivity(topology: Topology) -> float:
    """Time (ms) to compute all-pairs best-effort forwarding state."""
    start = telemetry.clock()
    compute_sink_trees(topology)
    return (telemetry.clock() - start) * 1000.0


def run_topology_zoo_experiment(
    count: int = 262,
    seed: int = 0,
    max_switches: int = 754,
) -> List[ZooRow]:
    """Compile connectivity for every topology of the synthetic Zoo ensemble."""
    rows: List[ZooRow] = []
    for topology in topology_zoo_ensemble(
        count=count, seed=seed, max_switches=max_switches
    ):
        rows.append(
            ZooRow(
                name=topology.name,
                switches=topology.num_switches(),
                hosts=topology.num_hosts(),
                compile_ms=compile_connectivity(topology),
            )
        )
    return rows


def compile_guaranteed(
    topology: Topology,
    guarantee_fraction: float = 0.05,
    max_classes: Optional[int] = None,
    seed: int = 0,
    options: Optional[ProvisionOptions] = None,
) -> float:
    """Time (ms) to compile all-pairs connectivity with guaranteed classes.

    Unlike :func:`compile_connectivity` this runs the full pipeline —
    localization, partitioned MIP provisioning, widening — so it is the
    entry point that exercises ``options.fabric`` and
    ``options.component_cache``.
    """
    policy = all_pairs_policy(
        topology,
        guarantee_fraction=guarantee_fraction,
        seed=seed,
        max_classes=max_classes,
    )
    compiler = MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=options,
    )
    start = telemetry.clock()
    compiler.compile(policy)
    return (telemetry.clock() - start) * 1000.0


def run_topology_zoo_guaranteed(
    count: int = 16,
    seed: int = 0,
    max_switches: int = 64,
    guarantee_fraction: float = 0.05,
    max_classes: Optional[int] = 32,
    options: Optional[ProvisionOptions] = None,
) -> List[ZooRow]:
    """The guaranteed-bandwidth zoo sweep: full MIP compilation per member.

    ``options`` is shared across the whole ensemble, so passing a
    ``component_cache`` (optionally spilled to disk) dedupes identical
    component models across topologies and across repeated sweeps; passing
    a ``fabric`` reuses one worker pool instead of spinning one up per
    member.  Defaults are deliberately smaller than the rateless sweep —
    each member solves MIPs, not just sink trees.
    """
    rows: List[ZooRow] = []
    for topology in topology_zoo_ensemble(
        count=count, seed=seed, max_switches=max_switches
    ):
        rows.append(
            ZooRow(
                name=topology.name,
                switches=topology.num_switches(),
                hosts=topology.num_hosts(),
                compile_ms=compile_guaranteed(
                    topology,
                    guarantee_fraction=guarantee_fraction,
                    max_classes=max_classes,
                    seed=seed,
                    options=options,
                ),
            )
        )
    return rows
