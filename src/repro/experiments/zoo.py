"""Figure 6: all-pairs connectivity compilation times on the Topology Zoo.

The paper compiles a pairwise-connectivity policy for each of the 262
Internet Topology Zoo networks and reports per-topology compilation time:
under 50 ms for most, under 600 ms for all but one, and about 4 s for the
largest (754-switch) topology.  The dataset itself is not redistributable
offline, so the driver uses the statistically matched synthetic ensemble
from :func:`repro.topology.generators.topology_zoo_ensemble`.

Because the interesting quantity is forwarding-state computation (not the
O(hosts²) policy enumeration), the driver measures the rateless compilation
path directly: sink trees for every egress switch over the switch-only
subgraph, which is exactly what the all-pairs policy compiles to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .. import telemetry
from ..core.sink_tree import compute_sink_trees
from ..topology.generators import topology_zoo_ensemble
from ..topology.graph import Topology


@dataclass
class ZooRow:
    """Compilation time for one topology of the ensemble."""

    name: str
    switches: int
    hosts: int
    compile_ms: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "switches": self.switches,
            "hosts": self.hosts,
            "compile_ms": self.compile_ms,
        }


def compile_connectivity(topology: Topology) -> float:
    """Time (ms) to compute all-pairs best-effort forwarding state."""
    start = telemetry.clock()
    compute_sink_trees(topology)
    return (telemetry.clock() - start) * 1000.0


def run_topology_zoo_experiment(
    count: int = 262,
    seed: int = 0,
    max_switches: int = 754,
) -> List[ZooRow]:
    """Compile connectivity for every topology of the synthetic Zoo ensemble."""
    rows: List[ZooRow] = []
    for topology in topology_zoo_ensemble(
        count=count, seed=seed, max_switches=max_switches
    ):
        rows.append(
            ZooRow(
                name=topology.name,
                switches=topology.num_switches(),
                hosts=topology.num_hosts(),
                compile_ms=compile_connectivity(topology),
            )
        )
    return rows
