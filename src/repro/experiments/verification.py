"""Figure 9: negotiator verification scaling.

Three sweeps, each measuring the time to verify a delegated policy against
its parent while one dimension grows:

1. the number of (refined) predicates / statements,
2. the complexity of the path regular expressions (AST node count),
3. the number of bandwidth allocations.

The paper's observations to reproduce: predicate and allocation verification
scale linearly and stay in the millisecond range up to tens of thousands of
items, while regular-expression verification grows roughly quadratically and
reaches seconds only for expressions with on the order of a thousand AST
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .. import telemetry
from ..core.ast import BandwidthTerm, FMax, Policy, Statement, formula_and
from ..negotiator.verification import verify_refinement
from ..predicates.ast import FieldTest, pred_and, pred_not, pred_or
from ..regex.ast import Regex, Symbol, concat, star, union
from ..regex.parser import parse_path_expression
from ..units import Bandwidth


@dataclass
class VerificationPoint:
    """One point of a Figure 9 curve."""

    size: int
    verify_ms: float
    valid: bool

    def as_dict(self) -> Dict[str, object]:
        return {"size": self.size, "verify_ms": self.verify_ms, "valid": self.valid}


def _timed_verification(original: Policy, refined: Policy) -> VerificationPoint:
    start = telemetry.clock()
    report = verify_refinement(original, refined)
    elapsed_ms = (telemetry.clock() - start) * 1000.0
    return VerificationPoint(size=0, verify_ms=elapsed_ms, valid=report.valid)


def sweep_predicates(counts: Sequence[int] = (10, 100, 1000, 5000)) -> List[VerificationPoint]:
    """Grow the number of refined statements partitioning one original statement.

    The original policy matches all TCP traffic; the refinement splits it by
    destination port into ``n`` disjoint statements (plus one catch-all), the
    same shape as the §4.1 example scaled up.
    """
    original = Policy(
        statements=(
            Statement("all", FieldTest("ip.proto", 6), parse_path_expression(".*")),
        )
    )
    points: List[VerificationPoint] = []
    for count in counts:
        ports = list(range(1, count + 1))
        statements = [
            Statement(
                f"p{port}",
                pred_and(FieldTest("ip.proto", 6), FieldTest("tcp.dst", port)),
                parse_path_expression(".*"),
            )
            for port in ports
        ]
        remainder = pred_and(
            FieldTest("ip.proto", 6),
            pred_not(pred_or(*[FieldTest("tcp.dst", port) for port in ports])),
        )
        statements.append(
            Statement("rest", remainder, parse_path_expression(".*"))
        )
        refined = Policy(statements=tuple(statements))
        point = _timed_verification(original, refined)
        point.size = count
        points.append(point)
    return points


def _chain_expression(nodes: int) -> Regex:
    """A path expression with roughly ``nodes`` AST nodes: ``.* f1 .* f2 ... .*``."""
    from ..regex.ast import DOT

    expression: Regex = star(DOT)
    index = 0
    while expression.size() < nodes:
        index += 1
        expression = concat(expression, Symbol(f"f{index}"), star(DOT))
    return expression


def sweep_regex_nodes(sizes: Sequence[int] = (10, 50, 100, 250, 500)) -> List[VerificationPoint]:
    """Grow the size of the refined statement's path expression.

    The refined expression appends one more required waypoint to the original
    expression, so inclusion always holds and the measurement isolates the
    automata work.
    """
    points: List[VerificationPoint] = []
    for size in sizes:
        original_expression = _chain_expression(size)
        from ..regex.ast import DOT

        refined_expression = concat(original_expression, Symbol("extra"), star(DOT))
        original = Policy(
            statements=(Statement("x", FieldTest("ip.proto", 6), original_expression),)
        )
        refined = Policy(
            statements=(Statement("x", FieldTest("ip.proto", 6), refined_expression),)
        )
        point = _timed_verification(original, refined)
        point.size = refined_expression.size()
        points.append(point)
    return points


def sweep_allocations(counts: Sequence[int] = (10, 100, 1000, 5000)) -> List[VerificationPoint]:
    """Grow the number of bandwidth allocations in the refined policy."""
    points: List[VerificationPoint] = []
    for count in counts:
        original_statements = [
            Statement(
                f"o{index}",
                FieldTest("tcp.dst", index + 1),
                parse_path_expression(".*"),
            )
            for index in range(count)
        ]
        original = Policy(
            statements=tuple(original_statements),
            formula=formula_and(
                *[
                    FMax(BandwidthTerm((f"o{index}",)), Bandwidth.mbps(10))
                    for index in range(count)
                ]
            ),
        )
        refined = Policy(
            statements=tuple(original_statements),
            formula=formula_and(
                *[
                    FMax(BandwidthTerm((f"o{index}",)), Bandwidth.mbps(5))
                    for index in range(count)
                ]
            ),
        )
        point = _timed_verification(original, refined)
        point.size = count
        points.append(point)
    return points
