"""Figures 7 and 8: compilation-time scaling on tree topologies.

The paper measures, for balanced trees and fat trees of increasing size,

* the time to provide all-pairs connectivity with no guarantees (the
  "rateless" path: sink trees), and
* the time to provide connectivity when 5% of the traffic classes receive
  bandwidth guarantees (LP construction plus LP solution time).

Each measurement produces one row of the Figure 7 table: number of traffic
classes, hosts, switches, LP construction time, LP solution time, and the
rateless solution time.

Construction and solve time are reported as separate columns
(``lp_construction_ms`` vs ``lp_solve_ms``) because they scale differently:
construction is a one-pass indexed assembly of the MIP (linear in the number
of logical edges plus physical links), while solving is the NP-hard part
delegated to the MIP backend.  ``mip_variables`` / ``mip_constraints`` record
the model size so the benchmark tables show what the solver was given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.compiler import MerlinCompiler
from ..core.options import ProvisionOptions
from ..topology.generators import balanced_tree, fat_tree
from ..topology.graph import Topology
from ..units import Bandwidth
from .policy_builders import all_pairs_policy


@dataclass
class ScalingRow:
    """One row of the Figure 7 table (or one point of a Figure 8 curve)."""

    topology: str
    traffic_classes: int
    hosts: int
    switches: int
    guaranteed_classes: int
    lp_construction_ms: float
    lp_solve_ms: float
    rateless_ms: float
    total_ms: float
    mip_variables: int = 0
    mip_constraints: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "traffic_classes": self.traffic_classes,
            "hosts": self.hosts,
            "switches": self.switches,
            "guaranteed": self.guaranteed_classes,
            "lp_construction_ms": self.lp_construction_ms,
            "lp_solve_ms": self.lp_solve_ms,
            "rateless_ms": self.rateless_ms,
            "total_ms": self.total_ms,
            "mip_variables": self.mip_variables,
            "mip_constraints": self.mip_constraints,
        }


def measure_compilation(
    topology: Topology,
    guarantee_fraction: float = 0.0,
    guarantee: Bandwidth = Bandwidth.mbps(1),
    max_classes: Optional[int] = None,
    seed: int = 0,
    options: Optional[ProvisionOptions] = None,
) -> ScalingRow:
    """Compile an all-pairs policy on ``topology`` and record the timing row.

    ``options`` configures the provisioning layer — in particular a
    :class:`~repro.fabric.SolveFabric` and/or
    :class:`~repro.fabric.ComponentSolutionCache` shared across the points
    of a scaling run, so fat trees full of structurally identical pods
    solve each distinct component shape once.
    """
    policy = all_pairs_policy(
        topology,
        guarantee_fraction=guarantee_fraction,
        guarantee=guarantee,
        seed=seed,
        max_classes=max_classes,
    )
    compiler = MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=options,
    )
    result = compiler.compile(policy)
    statistics = result.statistics
    return ScalingRow(
        topology=topology.name,
        traffic_classes=len(policy.statements),
        hosts=topology.num_hosts(),
        switches=topology.num_switches(),
        guaranteed_classes=statistics.num_guaranteed_statements,
        lp_construction_ms=statistics.lp_construction_seconds * 1000.0,
        lp_solve_ms=statistics.lp_solve_seconds * 1000.0,
        rateless_ms=statistics.rateless_seconds * 1000.0,
        total_ms=statistics.total_seconds * 1000.0,
        mip_variables=statistics.num_mip_variables,
        mip_constraints=statistics.num_mip_constraints,
    )


def figure7_table(
    arities: Sequence[int] = (4, 6),
    guarantee_fraction: float = 0.05,
    max_classes: Optional[int] = None,
    options: Optional[ProvisionOptions] = None,
) -> List[ScalingRow]:
    """The Figure 7 table: fat trees with 5% of traffic classes guaranteed."""
    rows = []
    for arity in arities:
        topology = fat_tree(arity)
        rows.append(
            measure_compilation(
                topology,
                guarantee_fraction=guarantee_fraction,
                max_classes=max_classes,
                options=options,
            )
        )
    return rows


def figure8_curves(
    kind: str = "fat-tree",
    sizes: Sequence[int] = (4, 6),
    guarantee_fraction: float = 0.05,
    max_classes: Optional[int] = None,
    options: Optional[ProvisionOptions] = None,
) -> Dict[str, List[ScalingRow]]:
    """The Figure 8 curves: best-effort vs 5%-guaranteed compilation times.

    ``kind`` selects the topology family (``"fat-tree"`` or
    ``"balanced-tree"``); ``sizes`` are fat-tree arities or balanced-tree
    depths.  Returns two series keyed ``"best-effort"`` and ``"guaranteed"``.
    ``options`` is shared across every point — hand it a component cache
    to dedupe identical components along the curve.
    """
    best_effort: List[ScalingRow] = []
    guaranteed: List[ScalingRow] = []
    for size in sizes:
        if kind == "fat-tree":
            topology = fat_tree(size)
        elif kind == "balanced-tree":
            topology = balanced_tree(depth=size, fanout=3, hosts_per_leaf=2)
        else:
            raise ValueError(f"unknown topology kind {kind!r}")
        best_effort.append(
            measure_compilation(
                topology,
                guarantee_fraction=0.0,
                max_classes=max_classes,
                options=options,
            )
        )
        guaranteed.append(
            measure_compilation(
                topology,
                guarantee_fraction=guarantee_fraction,
                max_classes=max_classes,
                options=options,
            )
        )
    return {"best-effort": best_effort, "guaranteed": guaranteed}
