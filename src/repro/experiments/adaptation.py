"""Figure 10 — dynamic adaptation with AIMD and max-min fair sharing.

Figure 10 (a): two hosts share a bottleneck under the AIMD negotiators —
the classic sawtooth whose sum stays below the shared capacity.

Figure 10 (b): four hosts (h1→h2 and h3→h4) under the max-min fair-sharing
negotiators — when only one flow is active it receives the whole bottleneck;
when both are active they converge to equal shares; when one stops the other
reclaims the capacity.  The demand schedule below mirrors the staggered
start/stop visible in the paper's plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..negotiator.aimd import AimdAllocator, AimdTrace
from ..negotiator.mmfs import MaxMinFairAllocator
from ..units import Bandwidth


@dataclass
class AdaptationTraces:
    """The two time series of Figure 10."""

    aimd: AimdTrace
    mmfs: AimdTrace


def run_aimd_experiment(
    capacity: Bandwidth = Bandwidth.mbps(600),
    steps: int = 70,
) -> AimdTrace:
    """Figure 10 (a): two tenants under AIMD negotiation."""
    allocator = AimdAllocator(
        capacity=capacity,
        additive_increase=Bandwidth.mbps(25),
        multiplicative_decrease=0.5,
        initial_allocation=Bandwidth.mbps(100),
    )
    allocator.add_tenant("h1-h2")
    allocator.add_tenant("h3-h4")
    return allocator.run(steps=steps, step_seconds=1.0)


def run_mmfs_experiment(
    capacity: Bandwidth = Bandwidth.mbps(450),
    steps: int = 30,
) -> AimdTrace:
    """Figure 10 (b): two flows under max-min fair sharing with staggered demands."""
    allocator = MaxMinFairAllocator(capacity=capacity)
    schedule: List[Dict[str, Bandwidth]] = []
    for step in range(steps):
        updates: Dict[str, Bandwidth] = {}
        if step == 0:
            # Only h1->h2 is active at the start.
            updates["h1-h2"] = Bandwidth.mbps(450)
            updates["h3-h4"] = Bandwidth(0)
        if step == 10:
            # h3->h4 starts: both converge to the fair share.
            updates["h3-h4"] = Bandwidth.mbps(450)
        if step == 22:
            # h1->h2 finishes: h3->h4 reclaims the capacity.
            updates["h1-h2"] = Bandwidth(0)
        schedule.append(updates)
    return allocator.run(schedule, step_seconds=1.0)


def run_adaptation_experiment() -> AdaptationTraces:
    """Both panels of Figure 10."""
    return AdaptationTraces(aimd=run_aimd_experiment(), mmfs=run_mmfs_experiment())
