"""End-host ``tc`` command generation.

Rate limits (``max`` clauses) are enforced at the sending host with an HTB
class whose ceiling is the cap; guarantees additionally install an HTB class
with the guaranteed rate so host-local contention cannot starve the
guaranteed traffic before it reaches the network.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.allocation import RateAllocation
from ..core.ast import Statement
from ..predicates.ast import And, FieldTest, Predicate
from ..topology.graph import Topology
from .instructions import TcCommand

#: Predicate fields renderable as tc u32 selectors.
_TC_SELECTORS = {
    "ip.src": "ip src",
    "ip.dst": "ip dst",
    "ip.proto": "ip protocol",
    "tcp.src": "ip sport",
    "tcp.dst": "ip dport",
    "udp.src": "ip sport",
    "udp.dst": "ip dport",
}


def _selectors(predicate: Predicate) -> Tuple[Tuple[str, str], ...]:
    selectors = []

    def walk(node: Predicate) -> None:
        if isinstance(node, FieldTest) and node.field in _TC_SELECTORS:
            selectors.append((_TC_SELECTORS[node.field], str(node.value)))
        elif isinstance(node, And):
            walk(node.left)
            walk(node.right)

    walk(predicate)
    return tuple(selectors)


def tc_for_statement(
    topology: Topology,
    statement: Statement,
    allocation: RateAllocation,
    source_host: Optional[str],
    interface: str = "eth0",
) -> List[TcCommand]:
    """``tc`` commands for one statement, installed at its source host."""
    if source_host is None or not topology.has_node(source_host):
        return []
    if not topology.node(source_host).is_host:
        return []
    commands: List[TcCommand] = []
    selectors = _selectors(statement.predicate)
    if allocation.cap is not None:
        commands.append(
            TcCommand(
                host=source_host,
                interface=interface,
                rate=allocation.cap,
                kind="cap",
                match=selectors,
                statement_id=statement.identifier,
            )
        )
    if allocation.guarantee is not None:
        commands.append(
            TcCommand(
                host=source_host,
                interface=interface,
                rate=allocation.guarantee,
                kind="guarantee",
                match=selectors,
                statement_id=statement.identifier,
            )
        )
    return commands
