"""End-host ``iptables`` rule generation.

Traffic filtering is implemented at end hosts: statements whose path
expression denotes the empty language (no allowed path — i.e. "drop") become
DROP rules at the source host, and statements explicitly marked as filtered
can install ACCEPT rules that document the allowed traffic.  This mirrors the
paper's use of ``iptables`` for traffic filtering.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.ast import Statement
from ..predicates.ast import And, FieldTest, Predicate
from ..topology.graph import Topology
from .instructions import IptablesRule

_IPTABLES_SELECTORS = {
    "ip.src": "source",
    "ip.dst": "destination",
    "tcp.dst": "dport",
    "tcp.src": "sport",
    "udp.dst": "dport",
    "udp.src": "sport",
    "ip.proto": "protocol",
}


def _selectors(predicate: Predicate) -> Tuple[Tuple[str, str], ...]:
    selectors = []

    def walk(node: Predicate) -> None:
        if isinstance(node, FieldTest) and node.field in _IPTABLES_SELECTORS:
            selectors.append((_IPTABLES_SELECTORS[node.field], str(node.value)))
        elif isinstance(node, And):
            walk(node.left)
            walk(node.right)

    walk(predicate)
    return tuple(selectors)


def drop_rule_for_statement(
    topology: Topology, statement: Statement, source_host: Optional[str]
) -> List[IptablesRule]:
    """A DROP rule at the source host for a statement with no allowed path."""
    if source_host is None or not topology.has_node(source_host):
        return []
    return [
        IptablesRule(
            host=source_host,
            chain="OUTPUT",
            match=_selectors(statement.predicate),
            action="DROP",
            statement_id=statement.identifier,
        )
    ]
