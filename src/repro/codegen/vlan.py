"""VLAN tag allocation for path encoding.

Because Merlin supports middleboxes that may rewrite packet headers (such as
NAT), forwarding cannot rely on the original header fields alone.  The paper
encodes the chosen forwarding structure in VLAN tags — one tag per sink tree
and one per guaranteed path — so subsequent switches only inspect the tag.
Packets are tagged when they enter the network and the tag is stripped at the
egress switch, after which the destination host's unique identifier (MAC) is
used for final delivery (the FlowTags-like scheme of §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CodegenError

#: The usable VLAN ID range (0 and 4095 are reserved).
_FIRST_TAG = 2
_LAST_TAG = 4094


@dataclass
class VlanAllocator:
    """Allocates unique VLAN tags to sink trees and guaranteed paths."""

    _next_tag: int = _FIRST_TAG
    _tree_tags: Dict[str, int] = field(default_factory=dict)
    _statement_tags: Dict[str, int] = field(default_factory=dict)

    def tag_for_tree(self, root_switch: str) -> int:
        """The tag assigned to the sink tree rooted at ``root_switch``."""
        if root_switch not in self._tree_tags:
            self._tree_tags[root_switch] = self._allocate()
        return self._tree_tags[root_switch]

    def tag_for_statement(self, statement_id: str) -> int:
        """The tag assigned to a statement's dedicated (guaranteed) path."""
        if statement_id not in self._statement_tags:
            self._statement_tags[statement_id] = self._allocate()
        return self._statement_tags[statement_id]

    def assignments(self) -> Dict[str, int]:
        """All allocations, keyed by ``tree:<root>`` and ``statement:<id>``."""
        result = {f"tree:{root}": tag for root, tag in self._tree_tags.items()}
        result.update(
            {f"statement:{name}": tag for name, tag in self._statement_tags.items()}
        )
        return result

    def _allocate(self) -> int:
        if self._next_tag > _LAST_TAG:
            raise CodegenError(
                "VLAN tag space exhausted: more than 4093 trees/paths requested"
            )
        tag = self._next_tag
        self._next_tag += 1
        return tag
