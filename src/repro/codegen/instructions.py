"""Instruction types emitted by code generation.

Each dataclass corresponds to one of the backends described in §3.4 and used
for the expressiveness measurement of Figure 4 (which reports counts of
OpenFlow rules, ``tc`` rules, and queue configurations).  Every instruction
can render itself to a textual form close to what the corresponding tool
would accept, which the examples print and the tests sanity-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..units import Bandwidth


@dataclass(frozen=True)
class OpenFlowRule:
    """A forwarding rule installed on an OpenFlow switch."""

    switch: str
    match: Tuple[Tuple[str, str], ...]
    actions: Tuple[str, ...]
    priority: int = 100
    statement_id: Optional[str] = None

    def render(self) -> str:
        match_text = ",".join(f"{key}={value}" for key, value in self.match)
        action_text = ",".join(self.actions)
        return (
            f"ovs-ofctl add-flow {self.switch} "
            f"'priority={self.priority},{match_text},actions={action_text}'"
        )


@dataclass(frozen=True)
class QueueConfig:
    """A switch port queue configured for a bandwidth guarantee."""

    switch: str
    port: str
    queue_id: int
    min_rate: Bandwidth
    max_rate: Optional[Bandwidth] = None
    statement_id: Optional[str] = None

    def render(self) -> str:
        parts = [
            f"ovs-vsctl set port {self.switch}:{self.port} qos=@qos{self.queue_id}",
            f"queue {self.queue_id}: min-rate={int(self.min_rate.bps_value)}",
        ]
        if self.max_rate is not None:
            parts.append(f"max-rate={int(self.max_rate.bps_value)}")
        return " ".join(parts)


@dataclass(frozen=True)
class TcCommand:
    """A Linux ``tc`` traffic-control command on an end host."""

    host: str
    interface: str
    rate: Bandwidth
    kind: str  # "cap" or "guarantee"
    match: Tuple[Tuple[str, str], ...] = ()
    statement_id: Optional[str] = None

    def render(self) -> str:
        rate_text = f"{self.rate.mbps_value:.0f}mbit"
        selector = " ".join(f"match {key} {value}" for key, value in self.match)
        if self.kind == "cap":
            shaping = f"ceil {rate_text} rate {rate_text}"
        else:
            shaping = f"rate {rate_text}"
        return (
            f"tc class add dev {self.interface} parent 1: classid 1:10 htb {shaping} "
            f"# host={self.host} {selector}"
        ).rstrip()


@dataclass(frozen=True)
class IptablesRule:
    """A Linux ``iptables`` filtering rule on an end host."""

    host: str
    chain: str
    match: Tuple[Tuple[str, str], ...]
    action: str
    statement_id: Optional[str] = None

    def render(self) -> str:
        selector = " ".join(f"--{key} {value}" for key, value in self.match)
        return f"iptables -A {self.chain} {selector} -j {self.action} # host={self.host}"


@dataclass(frozen=True)
class ClickConfig:
    """A Click configuration fragment installing a packet function on a middlebox."""

    location: str
    function: str
    statement_id: Optional[str] = None

    def render(self) -> str:
        element = self.function.upper()
        return f"FromDevice(eth0) -> {element}() -> ToDevice(eth1);  // at {self.location}"


@dataclass
class InstructionBundle:
    """All instructions generated for one policy compilation."""

    openflow: List[OpenFlowRule] = field(default_factory=list)
    queues: List[QueueConfig] = field(default_factory=list)
    tc: List[TcCommand] = field(default_factory=list)
    iptables: List[IptablesRule] = field(default_factory=list)
    click: List[ClickConfig] = field(default_factory=list)

    # -- counting (the Figure 4 metric) ---------------------------------------

    def counts(self) -> Dict[str, int]:
        """Instruction counts by category."""
        return {
            "openflow": len(self.openflow),
            "queues": len(self.queues),
            "tc": len(self.tc),
            "iptables": len(self.iptables),
            "click": len(self.click),
        }

    def total(self) -> int:
        """Total number of low-level instructions."""
        return sum(self.counts().values())

    # -- grouping ----------------------------------------------------------------

    def by_device(self) -> Dict[str, List]:
        """Instructions grouped by the device they configure."""
        devices: Dict[str, List] = {}
        for rule in self.openflow:
            devices.setdefault(rule.switch, []).append(rule)
        for queue in self.queues:
            devices.setdefault(queue.switch, []).append(queue)
        for command in self.tc:
            devices.setdefault(command.host, []).append(command)
        for rule in self.iptables:
            devices.setdefault(rule.host, []).append(rule)
        for config in self.click:
            devices.setdefault(config.location, []).append(config)
        return devices

    def for_statement(self, statement_id: str) -> "InstructionBundle":
        """The subset of instructions attributable to one statement."""
        return InstructionBundle(
            openflow=[r for r in self.openflow if r.statement_id == statement_id],
            queues=[q for q in self.queues if q.statement_id == statement_id],
            tc=[t for t in self.tc if t.statement_id == statement_id],
            iptables=[i for i in self.iptables if i.statement_id == statement_id],
            click=[c for c in self.click if c.statement_id == statement_id],
        )

    def merge(self, other: "InstructionBundle") -> None:
        """Append all instructions from another bundle."""
        self.openflow.extend(other.openflow)
        self.queues.extend(other.queues)
        self.tc.extend(other.tc)
        self.iptables.extend(other.iptables)
        self.click.extend(other.click)

    def render(self) -> str:
        """Render every instruction as text (one per line)."""
        lines: List[str] = []
        for group in (self.openflow, self.queues, self.tc, self.iptables, self.click):
            lines.extend(item.render() for item in group)
        return "\n".join(lines)
