"""Code-generation orchestrator.

Walks the compilation outputs (path assignments, sink trees, rate
allocations) and emits the complete :class:`InstructionBundle` for the
network: OpenFlow rules, queue configurations, ``tc`` commands, ``iptables``
filters, and Click configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..core.allocation import PathAssignment, RateAllocation
from ..core.ast import Policy, Statement
from ..core.sink_tree import SinkTree
from ..topology.graph import Topology
from .click import click_for_assignments
from .instructions import InstructionBundle
from .iptables import drop_rule_for_statement
from .openflow import rules_for_path, rules_for_sink_tree
from .queues import QueueAllocator, queues_for_path
from .tc import tc_for_statement
from .vlan import VlanAllocator


@dataclass
class CodeGenerator:
    """Generates device instructions from compilation outputs."""

    topology: Topology

    def generate(
        self,
        policy: Policy,
        paths: Mapping[str, PathAssignment],
        rates: Mapping[str, RateAllocation],
        sink_trees: Mapping[str, SinkTree],
        endpoints: Optional[Mapping[str, Tuple[Optional[str], Optional[str]]]] = None,
        infeasible_statements: Tuple[str, ...] = (),
    ) -> InstructionBundle:
        """Emit the full instruction bundle for one compiled policy.

        ``endpoints`` maps statement identifiers to their inferred
        (source host, destination host); it drives end-host ``tc`` and
        ``iptables`` placement.  ``infeasible_statements`` lists statements
        whose path language is empty — their traffic is dropped at the edge.
        """
        endpoints = endpoints or {}
        bundle = InstructionBundle()
        vlans = VlanAllocator()
        queue_allocator = QueueAllocator()

        # Best-effort forwarding state: one set of rules per sink tree.
        for root in sorted(sink_trees):
            bundle.openflow.extend(
                rules_for_sink_tree(self.topology, sink_trees[root], vlans)
            )

        # Per-statement guaranteed / path-constrained forwarding state.
        for statement in policy.statements:
            assignment = paths.get(statement.identifier)
            allocation = rates.get(statement.identifier)
            source_host = endpoints.get(statement.identifier, (None, None))[0]

            if assignment is not None and len(assignment.path) > 1:
                bundle.openflow.extend(
                    rules_for_path(self.topology, assignment, statement.predicate, vlans)
                )
                if allocation is not None and allocation.is_guaranteed:
                    bundle.queues.extend(
                        queues_for_path(
                            self.topology, assignment, allocation, queue_allocator
                        )
                    )

            if allocation is not None and (
                allocation.cap is not None or allocation.is_guaranteed
            ):
                bundle.tc.extend(
                    tc_for_statement(self.topology, statement, allocation, source_host)
                )

            if statement.identifier in infeasible_statements:
                bundle.iptables.extend(
                    drop_rule_for_statement(self.topology, statement, source_host)
                )

        # Middlebox configurations for every placed packet-processing function.
        bundle.click.extend(click_for_assignments(dict(paths)))
        return bundle


def generate(
    topology: Topology,
    policy: Policy,
    paths: Mapping[str, PathAssignment],
    rates: Mapping[str, RateAllocation],
    sink_trees: Mapping[str, SinkTree],
    endpoints: Optional[Mapping[str, Tuple[Optional[str], Optional[str]]]] = None,
    infeasible_statements: Tuple[str, ...] = (),
) -> InstructionBundle:
    """Module-level convenience wrapper around :class:`CodeGenerator`."""
    return CodeGenerator(topology=topology).generate(
        policy, paths, rates, sink_trees, endpoints, infeasible_statements
    )
