"""Switch queue configuration for bandwidth guarantees.

Bandwidth guarantees are enforced with per-port quality-of-service queues on
the switches along the guaranteed path: each switch-to-switch hop of the path
gets a queue whose minimum rate is the statement's guaranteed rate (and whose
maximum rate is the statement's cap, when one exists).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..core.allocation import PathAssignment, RateAllocation
from ..topology.graph import Topology
from .instructions import QueueConfig


class QueueAllocator:
    """Assigns queue identifiers per (switch, port) pair."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], itertools.count] = {}

    def next_queue_id(self, switch: str, port: str) -> int:
        key = (switch, port)
        if key not in self._counters:
            self._counters[key] = itertools.count(1)
        return next(self._counters[key])


def queues_for_path(
    topology: Topology,
    assignment: PathAssignment,
    allocation: RateAllocation,
    allocator: Optional[QueueAllocator] = None,
) -> List[QueueConfig]:
    """Queue configurations for one guaranteed statement's path."""
    if allocation.guarantee is None:
        return []
    allocator = allocator or QueueAllocator()
    configs: List[QueueConfig] = []
    for source, target in assignment.links():
        if not topology.has_node(source) or not topology.node(source).is_switch:
            continue
        queue_id = allocator.next_queue_id(source, target)
        configs.append(
            QueueConfig(
                switch=source,
                port=target,
                queue_id=queue_id,
                min_rate=allocation.guarantee,
                max_rate=allocation.cap,
                statement_id=assignment.statement_id,
            )
        )
    return configs
