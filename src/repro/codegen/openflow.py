"""OpenFlow rule generation.

Two kinds of forwarding state are emitted:

* **Sink-tree rules** for best-effort traffic: every switch on the tree
  matches the tree's VLAN tag and forwards towards the root; the root strips
  the tag and delivers to the destination host by MAC address; ingress
  switches tag packets destined to the tree's hosts as they enter the
  network.
* **Per-statement path rules** for guaranteed traffic: the statement's
  classifying match (derived from its predicate) is installed at the ingress
  switch, which pushes a dedicated VLAN tag; every switch along the selected
  path forwards on that tag; the egress switch pops the tag and delivers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.allocation import PathAssignment
from ..core.sink_tree import SinkTree
from ..predicates.ast import And, FieldTest, Not, Or, Predicate, PTrue
from ..topology.graph import Topology
from .instructions import OpenFlowRule
from .vlan import VlanAllocator

#: Header fields that OpenFlow 1.0-style matches can express directly.
_MATCHABLE_FIELDS = {
    "eth.src": "dl_src",
    "eth.dst": "dl_dst",
    "eth.type": "dl_type",
    "vlan.id": "dl_vlan",
    "ip.src": "nw_src",
    "ip.dst": "nw_dst",
    "ip.proto": "nw_proto",
    "tcp.src": "tp_src",
    "tcp.dst": "tp_dst",
    "udp.src": "tp_src",
    "udp.dst": "tp_dst",
}


def match_from_predicate(predicate: Predicate) -> Tuple[Tuple[str, str], ...]:
    """Extract an OpenFlow match from the positive atoms of a predicate.

    Negations and disjunctions cannot be expressed in a single OpenFlow
    match; they are conservatively ignored here (the classification is still
    refined by the VLAN tagging installed at the ingress), which matches the
    paper's use of VLAN tags to make forwarding robust to header rewriting.
    """
    fields: Dict[str, str] = {}

    def walk(node: Predicate) -> None:
        if isinstance(node, FieldTest) and node.field in _MATCHABLE_FIELDS:
            fields.setdefault(_MATCHABLE_FIELDS[node.field], str(node.value))
        elif isinstance(node, And):
            walk(node.left)
            walk(node.right)
        # Or / Not / PTrue contribute nothing to a single match.

    walk(predicate)
    return tuple(sorted(fields.items()))


def rules_for_sink_tree(
    topology: Topology,
    tree: SinkTree,
    vlans: VlanAllocator,
    statement_id: Optional[str] = None,
) -> List[OpenFlowRule]:
    """Forwarding rules implementing one sink tree."""
    tag = vlans.tag_for_tree(tree.root)
    rules: List[OpenFlowRule] = []

    # Transit rules: match the tag, forward towards the root.
    for switch, next_hop in sorted(tree.next_hop.items()):
        rules.append(
            OpenFlowRule(
                switch=switch,
                match=(("dl_vlan", str(tag)),),
                actions=(f"output:{next_hop}",),
                priority=100,
                statement_id=statement_id,
            )
        )

    # Egress delivery rules: strip the tag and forward to the host by MAC.
    for host in tree.hosts:
        mac = topology.node(host).mac or host
        rules.append(
            OpenFlowRule(
                switch=tree.root,
                match=(("dl_vlan", str(tag)), ("dl_dst", mac)),
                actions=("strip_vlan", f"output:{host}"),
                priority=200,
                statement_id=statement_id,
            )
        )

    # Ingress tagging rules: at every edge switch, packets destined to the
    # tree's hosts are tagged as they enter the network.
    edge_switches = [
        switch.name
        for switch in topology.switches()
        if topology.hosts_on_switch(switch.name)
    ]
    for ingress in edge_switches:
        if ingress == tree.root:
            continue
        for host in tree.hosts:
            mac = topology.node(host).mac or host
            rules.append(
                OpenFlowRule(
                    switch=ingress,
                    match=(("dl_dst", mac),),
                    actions=(f"push_vlan:{tag}", f"output:{tree.next_hop.get(ingress, tree.root)}"),
                    priority=50,
                    statement_id=statement_id,
                )
            )
    return rules


def rules_for_path(
    topology: Topology,
    assignment: PathAssignment,
    predicate: Predicate,
    vlans: VlanAllocator,
) -> List[OpenFlowRule]:
    """Forwarding rules pinning one statement's traffic to its selected path."""
    tag = vlans.tag_for_statement(assignment.statement_id)
    rules: List[OpenFlowRule] = []
    switch_hops = _switch_hops(topology, assignment)
    if not switch_hops:
        return rules
    classify_match = match_from_predicate(predicate)

    ingress_switch, first_next = switch_hops[0]
    rules.append(
        OpenFlowRule(
            switch=ingress_switch,
            match=classify_match,
            actions=(f"push_vlan:{tag}", f"output:{first_next}"),
            priority=300,
            statement_id=assignment.statement_id,
        )
    )
    for switch, next_hop in switch_hops[1:]:
        rules.append(
            OpenFlowRule(
                switch=switch,
                match=(("dl_vlan", str(tag)),),
                actions=(f"output:{next_hop}",),
                priority=300,
                statement_id=assignment.statement_id,
            )
        )
    # Egress: strip the tag and deliver to the final location of the path.
    egress_switch = switch_hops[-1][0] if switch_hops[-1][1] is None else switch_hops[-1][1]
    destination = assignment.path[-1]
    destination_mac = (
        topology.node(destination).mac
        if topology.has_node(destination) and topology.node(destination).mac
        else destination
    )
    rules.append(
        OpenFlowRule(
            switch=egress_switch if topology.node(egress_switch).is_switch else switch_hops[-1][0],
            match=(("dl_vlan", str(tag)), ("dl_dst", destination_mac)),
            actions=("strip_vlan", f"output:{destination}"),
            priority=300,
            statement_id=assignment.statement_id,
        )
    )
    return rules


def _switch_hops(
    topology: Topology, assignment: PathAssignment
) -> List[Tuple[str, Optional[str]]]:
    """(switch, next hop) pairs along the assignment's path.

    The next hop is the next distinct location after the switch on the path
    (a switch, middlebox, or the destination host); ``None`` marks the final
    switch.
    """
    path = [
        location
        for index, location in enumerate(assignment.path)
        if index == 0 or location != assignment.path[index - 1]
    ]
    hops: List[Tuple[str, Optional[str]]] = []
    for index, location in enumerate(path):
        if not topology.has_node(location) or not topology.node(location).is_switch:
            continue
        next_hop = path[index + 1] if index + 1 < len(path) else None
        hops.append((location, next_hop))
    return hops
