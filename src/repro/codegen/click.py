"""Click middlebox configuration generation.

Each packet-processing function placed on a middlebox (or host acting as
one) is realised as a Click configuration fragment.  The paper drives real
Click routers; here the configuration is an in-memory object with a faithful
textual rendering, which both the instruction counts of Figure 4 and the
simulator's middlebox model consume.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..core.allocation import PathAssignment
from .instructions import ClickConfig


def click_for_assignment(assignment: PathAssignment) -> List[ClickConfig]:
    """Click configurations for the functions placed along one path."""
    configs: List[ClickConfig] = []
    for function, location in sorted(assignment.function_placements.items()):
        configs.append(
            ClickConfig(
                location=location,
                function=function,
                statement_id=assignment.statement_id,
            )
        )
    return configs


def click_for_assignments(
    assignments: Mapping[str, PathAssignment]
) -> List[ClickConfig]:
    """Click configurations for every path assignment, deduplicated per placement.

    Several statements may place the same function on the same location;
    only one Click instance is configured for each (location, function) pair,
    mirroring how a single DPI box serves many traffic classes.
    """
    seen = set()
    configs: List[ClickConfig] = []
    for statement_id in sorted(assignments):
        for config in click_for_assignment(assignments[statement_id]):
            key = (config.location, config.function)
            if key in seen:
                continue
            seen.add(key)
            configs.append(config)
    return configs
