"""Code generation for network devices (§3.4).

The compiler's final stage turns path assignments, sink trees, and bandwidth
allocations into the low-level instructions the paper's backends emit:

* **OpenFlow rules** for switches (forwarding along VLAN-tagged sink trees
  and per-statement guaranteed paths),
* **queue configurations** on switch ports for bandwidth guarantees,
* **tc commands** on end hosts for rate limits and guarantees,
* **iptables rules** on end hosts for traffic filtering,
* **Click configurations** for software middleboxes hosting packet-processing
  functions.

The instruction objects are counted exactly as Figure 4 counts them and can
also be rendered to textual configuration for inspection.
"""

from .instructions import (
    ClickConfig,
    InstructionBundle,
    IptablesRule,
    OpenFlowRule,
    QueueConfig,
    TcCommand,
)
from .generator import CodeGenerator, generate
from .vlan import VlanAllocator

__all__ = [
    "ClickConfig",
    "InstructionBundle",
    "IptablesRule",
    "OpenFlowRule",
    "QueueConfig",
    "TcCommand",
    "CodeGenerator",
    "generate",
    "VlanAllocator",
]
