"""Replaying scenario streams against a live session, in simulator lockstep.

:func:`replay` is the harness the churn benchmarks and the acceptance
criterion run: compile a scenario population's base policy once, open the
compiler's :class:`~repro.core.session.Session`, and apply every generated
event as one transaction.  For each event it records the re-provisioning
latency, the self-healing slack-widening counters from
:class:`~repro.core.allocation.CompilationStatistics`, and — in lockstep —
the guaranteed-traffic availability measured by handing the updated
allocation to the fluid simulator on the session's *active* (degraded)
topology.  The simulator doubles as a consistency check: its max-min
allocator raises if the compiled guarantees oversubscribe any surviving
link, so a divergence between compiler and simulator views of the network
cannot pass silently.

Events the compiler legitimately rejects (e.g. a join whose path expression
is unsatisfiable while a failure is outstanding) roll the session back and
are recorded as ``"rejected"``; the stream continues.  The session becoming
*unusable* after a rejection is an invalidation — the failure mode the
widening ladder exists to prevent — and is counted separately (the churn
acceptance criterion asserts it stays zero).

After the stream, the final session allocation is verified against a fresh
session that compiles the final policy from scratch and applies the final
failure state as a single delta: identical paths and link reservations,
the transactional-equivalence guarantee extended across an arbitrary churn
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..analysis.reporting import format_percentiles, percentile
from ..core.allocation import CompilationResult
from ..core.compiler import MerlinCompiler
from ..core.options import ProvisionOptions
from ..errors import MerlinError, SimulationError
from ..simulator.engine import FlowSimulator
from ..simulator.flows import Flow
from ..simulator.network import SimulationNetwork
from .events import ScenarioEvent
from .generator import Scenario


@dataclass(frozen=True)
class EventRecord:
    """What happened when one scenario event was applied to the session."""

    index: int
    time: float
    kind: str
    status: str  # "ok" or "rejected"
    latency_ms: float
    slack_retries: int = 0
    footprint_slack_used: Optional[float] = None
    dirty_partitions: int = 0
    partitions: int = 0
    availability: float = 1.0
    error: str = ""

    @property
    def widened(self) -> bool:
        """Did this event's re-provisioning need the slack-widening ladder?"""
        return self.status == "ok" and self.slack_retries > 0


@dataclass
class ReplayReport:
    """The outcome of replaying one scenario stream."""

    records: List[EventRecord] = field(default_factory=list)
    rollbacks: int = 0
    invalidations: int = 0
    simulator_inconsistencies: int = 0
    final_identical: Optional[bool] = None

    @property
    def applied(self) -> int:
        return sum(1 for record in self.records if record.status == "ok")

    @property
    def rejected(self) -> int:
        return sum(1 for record in self.records if record.status == "rejected")

    @property
    def widened_events(self) -> int:
        return sum(1 for record in self.records if record.widened)

    def latencies_ms(self) -> List[float]:
        return [r.latency_ms for r in self.records if r.status == "ok"]

    def availabilities(self) -> List[float]:
        return [r.availability for r in self.records if r.status == "ok"]

    def min_availability(self) -> float:
        values = self.availabilities()
        return min(values) if values else 1.0

    def mean_availability(self) -> float:
        values = self.availabilities()
        return sum(values) / len(values) if values else 1.0

    def summary(self) -> str:
        """A multi-line human-readable report (used by ``make bench-churn``)."""
        latencies = self.latencies_ms()
        lines = [
            f"events applied={self.applied} rejected={self.rejected} "
            f"rollbacks={self.rollbacks} invalidations={self.invalidations}",
            f"slack widening: {self.widened_events} events recovered "
            f"({sum(r.slack_retries for r in self.records)} retries total)",
            "re-provisioning latency: " + format_percentiles(latencies),
            (
                "availability: "
                f"min={self.min_availability():.4f} "
                f"mean={self.mean_availability():.4f}"
            ),
        ]
        if latencies:
            lines.append(
                f"latency max={percentile(latencies, 100.0):.2f}ms "
                f"over {len(latencies)} applied events"
            )
        if self.simulator_inconsistencies:
            lines.append(
                f"SIMULATOR INCONSISTENCIES: {self.simulator_inconsistencies}"
            )
        if self.final_identical is not None:
            lines.append(
                "final allocation identical to from-scratch compile: "
                + ("yes" if self.final_identical else "NO")
            )
        return "\n".join(lines)


def allocations_match(
    left: CompilationResult, right: CompilationResult, tolerance: float = 1e-6
) -> bool:
    """Same paths and the same link reservations, to ``tolerance`` bps."""
    paths_left = {identifier: tuple(a.path) for identifier, a in left.paths.items()}
    paths_right = {identifier: tuple(a.path) for identifier, a in right.paths.items()}
    if paths_left != paths_right:
        return False
    reservations_left = {
        key: value.bps_value for key, value in left.link_reservations.items()
    }
    reservations_right = {
        key: value.bps_value for key, value in right.link_reservations.items()
    }
    if set(reservations_left) != set(reservations_right):
        return False
    return all(
        abs(reservations_left[key] - reservations_right[key]) <= tolerance
        for key in reservations_left
    )


def _measure_availability(result: CompilationResult, topology) -> Tuple[float, bool]:
    """(fraction of guaranteed statements at full rate, simulator consistent?).

    Builds one flow per guaranteed statement sending exactly its guarantee
    and asks the fluid simulator for instantaneous max-min rates on the
    active topology.  The allocator raising ``SimulationError`` means the
    compiled reservations oversubscribe a link the simulator sees — a
    lockstep inconsistency, never expected.
    """
    flows: List[Flow] = []
    for identifier, allocation in sorted(result.rates.items()):
        if not allocation.is_guaranteed:
            continue
        assignment = result.paths.get(identifier)
        if assignment is None or len(assignment.path) < 2:
            continue
        guarantee = allocation.guarantee.bps_value
        flows.append(
            Flow(
                flow_id=identifier,
                path=assignment.path,
                demand_bps=guarantee,
                guarantee_bps=guarantee,
                statement_id=identifier,
            )
        )
    if not flows:
        return 1.0, True
    simulator = FlowSimulator(SimulationNetwork(topology, result))
    for flow in flows:
        simulator.add_flow(flow)
    try:
        rates = simulator.current_rates()
    except SimulationError:
        return 0.0, False
    satisfied = sum(
        1
        for flow in flows
        if rates.get(flow.flow_id, 0.0) >= flow.guarantee_bps * (1.0 - 1e-9)
    )
    return satisfied / len(flows), True


def replay(
    scenario: Scenario,
    compiler: Optional[MerlinCompiler] = None,
    options: Optional[ProvisionOptions] = None,
    check_simulator: bool = True,
    verify_final: bool = True,
) -> ReplayReport:
    """Replay a scenario's event stream against a live session.

    ``compiler`` defaults to a codegen-less compiler on the scenario
    population's topology and placements (``options`` configures its
    provisioning).  Raises only on programming errors; compilation failures
    are recorded per event, and a session invalidation (session unusable
    after rollback) is counted rather than raised so the report shows it.
    """
    population = scenario.population
    if compiler is None:
        compiler = MerlinCompiler(
            topology=population.topology,
            placements=population.placements,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
            options=options,
        )
    compiler.compile(population.policy)
    compiler.prepare_incremental()
    session = compiler.session()

    report = ReplayReport()
    last_result: Optional[CompilationResult] = None

    for event in scenario.events:
        # Per-event latency is the ``scenario_event`` span's duration —
        # deterministic under an injected telemetry clock, traced (with
        # the recompile transaction nested inside) when a recorder is on.
        error: Optional[MerlinError] = None
        with telemetry.span("scenario_event", kind=event.kind) as event_span:
            try:
                result = session.apply(event)
            except MerlinError as caught:
                error = caught
        latency_ms = event_span.duration * 1000.0
        telemetry.observe("event_latency_ms", latency_ms, kind=event.kind)
        if error is not None:
            telemetry.counter("events_rejected")
            report.rollbacks += 1
            if not compiler.has_session:
                report.invalidations += 1
            report.records.append(
                EventRecord(
                    index=event.index,
                    time=event.time,
                    kind=event.kind,
                    status="rejected",
                    latency_ms=latency_ms,
                    error=f"{type(error).__name__}: {error}",
                )
            )
            if not compiler.has_session:
                break  # the session is gone; nothing left to replay against
            continue
        telemetry.counter("events_applied")
        last_result = result
        statistics = result.statistics
        availability, consistent = 1.0, True
        if check_simulator:
            availability, consistent = _measure_availability(
                result, session.topology
            )
            if not consistent:
                report.simulator_inconsistencies += 1
        report.records.append(
            EventRecord(
                index=event.index,
                time=event.time,
                kind=event.kind,
                status="ok",
                latency_ms=latency_ms,
                slack_retries=statistics.slack_retries,
                footprint_slack_used=statistics.footprint_slack_used,
                dirty_partitions=statistics.dirty_partitions,
                partitions=statistics.num_partitions,
                availability=availability,
            )
        )

    if verify_final and last_result is not None and compiler.has_session:
        # A fresh session: compile the final policy from scratch on the
        # pristine topology, then apply the accumulated failure state as
        # one delta.  Equivalence between one delta on a fresh session and
        # the whole replayed history is the transactional-equivalence
        # guarantee extended across arbitrary churn.
        fresh = MerlinCompiler(
            topology=population.topology,
            placements=population.placements,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
            options=compiler.options,
        )
        from_scratch = fresh.compile(last_result.policy)
        if session.failed_links or session.failed_nodes:
            from ..incremental.delta import TopologyDelta

            from_scratch = fresh.recompile(
                TopologyDelta(
                    fail_links=tuple(sorted(session.failed_links)),
                    fail_nodes=tuple(sorted(session.failed_nodes)),
                )
            )
        report.final_identical = allocations_match(last_result, from_scratch)
    return report
