"""Seeded, deterministic churn & failure scenario generation.

:func:`generate_scenario` builds a *population* — a fat tree augmented with
per-pod backup chains and middleboxes, hosting one pod-local tenant per pod
— and then a stream of typed :mod:`~repro.scenarios.events`:

* link/switch failures and their (exponentially distributed) recoveries,
* tenant join/leave waves adding and removing guaranteed statements,
* diurnal + flash-crowd rate renegotiations, and
* middlebox-chain rewrites toggling statements through the pod's DPI box.

All randomness comes from one ``random.Random(seed)``: the same config
produces a byte-identical stream (see
:func:`~repro.scenarios.events.serialize_events`).

**Why the backup chains matter.**  A pristine fat-tree pod is a complete
bipartite edge/aggregation graph: every intra-pod path has the same hop
count, so cost-bound footprint pruning (slack 2) can never exclude a
surviving path and slack widening would have nothing to do.  Each pod
therefore gets a chain of backup switches strung between its first and last
edge switch — a detour ``chain_length - 1`` hops longer than the optimal
2-hop fabric path, included in every pod statement's path language.  At the
default slack 2 the chain is pruned away; when failures kill enough
short-path capacity, the pruned component model turns infeasible and the
provisioner widens slack geometrically (2→4→8) until the chain re-enters —
the self-healing behaviour the churn benchmark measures.  Link capacities
are deliberately small relative to the guarantees so failures actually
crunch capacity instead of merely rerouting.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.ast import BandwidthTerm, FMin, Policy, Statement, formula_and
from ..incremental.delta import DeltaStatement, RateUpdate
from ..predicates.ast import FieldTest, pred_and
from ..regex.ast import Regex, Symbol, concat, star, union
from ..topology.generators import fat_tree
from ..topology.graph import Topology
from ..units import Bandwidth
from .events import (
    LinkFailure,
    LinkRecovery,
    MiddleboxRewrite,
    RateRenegotiation,
    ScenarioEvent,
    SwitchFailure,
    SwitchRecovery,
    TenantJoin,
    TenantLeave,
)

#: Event-kind weights: (kind, relative probability).  Renegotiations
#: dominate (the paper's cheap-adaptation case); failures and membership
#: churn are the expensive tail.
DEFAULT_KIND_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("link-failure", 3.0),
    ("switch-failure", 1.5),
    ("tenant-join", 2.0),
    ("tenant-leave", 1.5),
    ("renegotiation", 5.0),
    ("middlebox-rewrite", 1.5),
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that determines a scenario, and nothing else.

    The default rates are balanced against the 400 Mbps links so that
    failures squeeze capacity without ever making a pod *genuinely*
    infeasible.  Worst-case pod demand — two base pairs and one joined
    tenant, all renegotiated to the diurnal-peak × flash maximum — is
    ``(2·150 + 60) · 1.25 · 1.25 ≈ 563 Mbps``.  With at most one failure
    per pod (``max_failures_per_pod``) the pod always keeps one 2-hop
    fabric path *plus* the backup chain (800 Mbps in aggregate, and no
    single statement exceeds 400), so a solve at wide-enough slack always
    succeeds.  But a single peak-renegotiated pair is ~234 Mbps, so two of
    them cannot share one 400 Mbps path: when a failure leaves only one
    short fabric path, the slack-2 pruned model (chain excluded) turns
    infeasible and the provisioner must widen to readmit the chain — the
    self-healing path under test.
    """

    seed: int = 0
    events: int = 200
    arity: int = 4
    pairs_per_pod: int = 2
    chain_length: int = 5
    link_capacity: Bandwidth = Bandwidth.mbps(400)
    middlebox_link_capacity: Bandwidth = Bandwidth.mbps(1000)
    guarantee: Bandwidth = Bandwidth.mbps(150)
    join_guarantee: Bandwidth = Bandwidth.mbps(60)
    mean_interarrival: float = 30.0
    mean_time_to_repair: float = 240.0
    diurnal_period: float = 2000.0
    diurnal_amplitude: float = 0.25
    flash_windows: int = 3
    flash_duration: float = 400.0
    flash_multiplier: float = 1.25
    max_failures_per_pod: int = 1
    max_concurrent_failures: int = 4
    max_joined_per_pod: int = 1
    kind_weights: Tuple[Tuple[str, float], ...] = DEFAULT_KIND_WEIGHTS


@dataclass
class PodPopulation:
    """One pod's cast: switches, hosts, backup chain, middlebox, tenants."""

    index: int
    edge: List[str]
    aggregation: List[str]
    chain: List[str]
    middlebox: str
    hosts: List[str]
    statement_ids: List[str] = field(default_factory=list)


@dataclass
class ScenarioPopulation:
    """The augmented topology and base policy a scenario runs against."""

    topology: Topology
    policy: Policy
    placements: Dict[str, Tuple[str, ...]]
    pods: List[PodPopulation]
    #: Baseline guarantee (Mbps) per statement — renegotiations scale this.
    base_rates_mbps: Dict[str, float]


@dataclass
class Scenario:
    """A population plus the deterministic event stream replayed against it."""

    config: ScenarioConfig
    population: ScenarioPopulation
    events: Tuple[ScenarioEvent, ...]


# -- population -------------------------------------------------------------


def _pair_predicate(topology: Topology, source: str, destination: str, port: int):
    return pred_and(
        FieldTest("eth.src", topology.node(source).mac),
        pred_and(
            FieldTest("eth.dst", topology.node(destination).mac),
            FieldTest("tcp.dst", port),
        ),
    )


def _pod_language(pod: PodPopulation, source: str, destination: str) -> Regex:
    """``(src|dst|pod fabric|pod backup chain)*`` — pod-local, chain included.

    Excludes core switches (traffic never leaves the pod, keeping tenants'
    MIP components link-disjoint) and the middlebox (reached only through
    the explicit ``dpi`` chain of :func:`_dpi_path`).
    """
    locations = sorted(
        {source, destination, *pod.edge, *pod.aggregation, *pod.chain}
    )
    return star(union(*[Symbol(location) for location in locations]))


def _plain_path(pod: PodPopulation, source: str, destination: str) -> Regex:
    return _pod_language(pod, source, destination)


def _dpi_path(pod: PodPopulation, source: str, destination: str) -> Regex:
    language = _pod_language(pod, source, destination)
    return concat(language, Symbol("dpi"), language)


def build_population(config: ScenarioConfig) -> ScenarioPopulation:
    """The fat tree + backup chains + middleboxes + base pod tenants."""
    topology = fat_tree(config.arity, capacity=config.link_capacity)
    pods: List[PodPopulation] = []
    for pod_index in range(config.arity):
        edge = sorted(
            name
            for name in topology.switch_names()
            if name.startswith(f"e{pod_index}_")
        )
        aggregation = sorted(
            name
            for name in topology.switch_names()
            if name.startswith(f"a{pod_index}_")
        )
        hosts = sorted(
            (host for switch in edge for host in topology.hosts_on_switch(switch)),
            key=lambda name: int(name[1:]),
        )
        # Backup chain: e_first — b0 — b1 — ... — b_last — e_last.  The
        # detour is (chain_length - 1) hops longer than the 2-hop fabric
        # path, so slack 2 prunes it and slack 4 (after one widening, with
        # the default chain length) readmits it.
        chain = [f"b{pod_index}_{i}" for i in range(config.chain_length)]
        for name in chain:
            topology.add_switch(name)
        topology.add_link(edge[0], chain[0], config.link_capacity)
        for left, right in zip(chain, chain[1:]):
            topology.add_link(left, right, config.link_capacity)
        topology.add_link(chain[-1], edge[-1], config.link_capacity)
        # The DPI middlebox hangs off the first *edge* switch: edge
        # switches never fail (hosts are attached), so a chain-rewritten
        # statement always has its function location reachable.
        middlebox = f"mb{pod_index}"
        topology.add_middlebox(middlebox, attached_switch=edge[0])
        # The attachment link carries a dpi statement's traffic TWICE (in
        # and out of the appliance), and both of a pod's base pairs may be
        # rewritten through dpi at the renegotiated peak: 2 pairs × 2
        # traversals × ~234 Mbps ≈ 938 Mbps.  A fabric-capacity link would
        # make such rewrites genuinely infeasible, so the appliance gets a
        # fat access link instead.
        topology.add_link(middlebox, edge[0], config.middlebox_link_capacity)
        pods.append(
            PodPopulation(
                index=pod_index,
                edge=edge,
                aggregation=aggregation,
                chain=chain,
                middlebox=middlebox,
                hosts=hosts,
            )
        )

    statements: List[Statement] = []
    clauses = []
    base_rates: Dict[str, float] = {}
    for pod in pods:
        first_rack = topology.hosts_on_switch(pod.edge[0])
        last_rack = topology.hosts_on_switch(pod.edge[-1])
        for pair in range(config.pairs_per_pod):
            # Cross-rack pairs: the 2-hop edge→aggregation→edge fabric
            # paths (and the long chain) are the only options, unlike
            # same-rack pairs that never leave their edge switch.
            source = first_rack[pair % len(first_rack)]
            destination = last_rack[pair % len(last_rack)]
            identifier = f"p{pod.index}s{pair}"
            statements.append(
                Statement(
                    identifier,
                    _pair_predicate(topology, source, destination, 8000 + pair),
                    _plain_path(pod, source, destination),
                )
            )
            clauses.append(
                FMin(BandwidthTerm(identifiers=(identifier,)), config.guarantee)
            )
            base_rates[identifier] = config.guarantee.mbps_value
            pod.statement_ids.append(identifier)
    policy = Policy(statements=tuple(statements), formula=formula_and(*clauses))
    placements = {"dpi": tuple(pod.middlebox for pod in pods)}
    return ScenarioPopulation(
        topology=topology,
        policy=policy,
        placements=placements,
        pods=pods,
        base_rates_mbps=base_rates,
    )


# -- the generator ----------------------------------------------------------


@dataclass
class _StatementInfo:
    """What the generator needs to re-emit or renegotiate a statement."""

    pod: int
    source: str
    destination: str
    port: int
    base_mbps: float
    current_mbps: float
    through_dpi: bool = False
    joined: bool = False


class _StreamBuilder:
    """Mutable state of one generation run (all randomness from ``rng``)."""

    def __init__(self, config: ScenarioConfig, population: ScenarioPopulation):
        self.config = config
        self.population = population
        self.rng = random.Random(config.seed)
        self.events: List[ScenarioEvent] = []
        self.time = 0.0
        self.failed_links: Set[Tuple[str, str]] = set()
        self.failed_nodes: Set[str] = set()
        self.pod_failures: Dict[Optional[int], int] = {}
        self.pending: List[Tuple[float, int, str, object]] = []  # repair heap
        self.sequence = 0
        self.join_counter = 0
        self.statements: Dict[str, _StatementInfo] = {}
        for pod in population.pods:
            first_rack = population.topology.hosts_on_switch(pod.edge[0])
            last_rack = population.topology.hosts_on_switch(pod.edge[-1])
            for pair, identifier in enumerate(pod.statement_ids):
                self.statements[identifier] = _StatementInfo(
                    pod=pod.index,
                    source=first_rack[pair % len(first_rack)],
                    destination=last_rack[pair % len(last_rack)],
                    port=8000 + pair,
                    base_mbps=population.base_rates_mbps[identifier],
                    current_mbps=population.base_rates_mbps[identifier],
                )
        # Flash-crowd windows, drawn up front so the rate formula is a pure
        # function of (rng draws so far, event time).
        horizon = config.events * config.mean_interarrival * 1.5
        self.flash: List[Tuple[float, float]] = sorted(
            (start, start + config.flash_duration)
            for start in (
                self.rng.uniform(0.0, horizon) for _ in range(config.flash_windows)
            )
        )

    # -- rate model ---------------------------------------------------------

    def _demand_multiplier(self, at_time: float) -> float:
        import math

        diurnal = 1.0 + self.config.diurnal_amplitude * math.sin(
            2.0 * math.pi * at_time / self.config.diurnal_period
        )
        flash = any(start <= at_time < end for start, end in self.flash)
        return diurnal * (self.config.flash_multiplier if flash else 1.0)

    # -- safety -------------------------------------------------------------

    def _pod_of_node(self, name: str) -> Optional[int]:
        if name[0] in "aeb" and "_" in name:
            return int(name[1 : name.index("_")])
        return None

    def _pod_of_link(self, link: Tuple[str, str]) -> Optional[int]:
        for endpoint in link:
            pod = self._pod_of_node(endpoint)
            if pod is not None:
                return pod
        return None

    def _pod_connected(
        self,
        pod: PodPopulation,
        failed_links: Set[Tuple[str, str]],
        failed_nodes: Set[str],
    ) -> bool:
        """Whether every pod statement still has *some* path in its language
        (pod fabric + chain) on the hypothetical degraded topology."""
        allowed = set(pod.hosts) | set(pod.edge) | set(pod.aggregation) | set(pod.chain)
        allowed -= failed_nodes
        topology = self.population.topology
        sources = {
            info.source
            for info in self.statements.values()
            if info.pod == pod.index
        }
        targets = {
            (info.source, info.destination)
            for info in self.statements.values()
            if info.pod == pod.index
        }
        if not targets:
            return True
        reachable: Dict[str, Set[str]] = {}
        for start in sources:
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbor in topology.neighbors(current):
                    if neighbor in seen or neighbor not in allowed:
                        continue
                    if tuple(sorted((current, neighbor))) in failed_links:
                        continue
                    seen.add(neighbor)
                    frontier.append(neighbor)
            reachable[start] = seen
        return all(
            destination in reachable[source] for source, destination in targets
        )

    def _safe_to_fail(
        self, link: Optional[Tuple[str, str]] = None, node: Optional[str] = None
    ) -> bool:
        if len(self.failed_links) + len(self.failed_nodes) >= (
            self.config.max_concurrent_failures
        ):
            return False
        pod_index = self._pod_of_link(link) if link else self._pod_of_node(node)
        if pod_index is not None:
            if self.pod_failures.get(pod_index, 0) >= self.config.max_failures_per_pod:
                return False
        failed_links = set(self.failed_links)
        failed_nodes = set(self.failed_nodes)
        if link:
            failed_links.add(link)
        if node:
            failed_nodes.add(node)
        if pod_index is None:
            return True  # core elements never carry pod-local traffic
        return self._pod_connected(
            self.population.pods[pod_index], failed_links, failed_nodes
        )

    # -- candidates ---------------------------------------------------------

    def _link_candidates(self) -> List[Tuple[str, str]]:
        topology = self.population.topology
        candidates = []
        for link in topology.undirected_edges():
            source, target = link
            if not (
                topology.node(source).is_switch and topology.node(target).is_switch
            ):
                continue
            if link in self.failed_links:
                continue
            if source in self.failed_nodes or target in self.failed_nodes:
                continue
            candidates.append(link)
        return candidates

    def _node_candidates(self) -> List[str]:
        topology = self.population.topology
        candidates = []
        for name in topology.switch_names():
            if name in self.failed_nodes:
                continue
            if name.startswith("e"):
                continue  # edge switches host endpoints and the middlebox
            if name.startswith("b"):
                # Chain switches appear by name in every pod path
                # expression; removing the node would make those
                # expressions unresolvable (a placement error, not a
                # re-provisioning problem).  Chain *links* may still fail.
                continue
            candidates.append(name)
        return candidates

    # -- event emission -----------------------------------------------------

    def _emit(self, event: ScenarioEvent) -> None:
        self.events.append(event)

    def _next_index(self) -> int:
        return len(self.events)

    def _schedule_repair(self, kind: str, payload) -> None:
        repair = self.time + self.rng.expovariate(
            1.0 / self.config.mean_time_to_repair
        )
        self.sequence += 1
        heapq.heappush(self.pending, (repair, self.sequence, kind, payload))

    def _emit_failure(self, kind: str) -> bool:
        if kind == "link-failure":
            candidates = self._link_candidates()
            self.rng.shuffle(candidates)
            for link in candidates:
                if self._safe_to_fail(link=link):
                    self.failed_links.add(link)
                    pod = self._pod_of_link(link)
                    self.pod_failures[pod] = self.pod_failures.get(pod, 0) + 1
                    self._emit(LinkFailure(self._next_index(), self.time, link=link))
                    self._schedule_repair("link", link)
                    return True
            return False
        candidates = self._node_candidates()
        self.rng.shuffle(candidates)
        for node in candidates:
            if self._safe_to_fail(node=node):
                self.failed_nodes.add(node)
                pod = self._pod_of_node(node)
                self.pod_failures[pod] = self.pod_failures.get(pod, 0) + 1
                self._emit(SwitchFailure(self._next_index(), self.time, switch=node))
                self._schedule_repair("node", node)
                return True
        return False

    def _emit_repair(self, kind: str, payload) -> None:
        if kind == "link":
            self.failed_links.discard(payload)
            pod = self._pod_of_link(payload)
            self._emit(LinkRecovery(self._next_index(), self.time, link=payload))
        else:
            self.failed_nodes.discard(payload)
            pod = self._pod_of_node(payload)
            self._emit(SwitchRecovery(self._next_index(), self.time, switch=payload))
        self.pod_failures[pod] = max(0, self.pod_failures.get(pod, 0) - 1)

    def _statement_for(self, identifier: str, info: _StatementInfo) -> Statement:
        pod = self.population.pods[info.pod]
        path = (
            _dpi_path(pod, info.source, info.destination)
            if info.through_dpi
            else _plain_path(pod, info.source, info.destination)
        )
        predicate = _pair_predicate(
            self.population.topology, info.source, info.destination, info.port
        )
        return Statement(identifier, predicate, path)

    def _emit_join(self) -> bool:
        pod_index = self.rng.randrange(len(self.population.pods))
        joined_here = sum(
            1
            for info in self.statements.values()
            if info.joined and info.pod == pod_index
        )
        if joined_here >= self.config.max_joined_per_pod:
            return False
        pod = self.population.pods[pod_index]
        first_rack = self.population.topology.hosts_on_switch(pod.edge[0])
        last_rack = self.population.topology.hosts_on_switch(pod.edge[-1])
        source = self.rng.choice(sorted(first_rack))
        destination = self.rng.choice(sorted(last_rack))
        identifier = f"j{self.join_counter}"
        self.join_counter += 1
        info = _StatementInfo(
            pod=pod_index,
            source=source,
            destination=destination,
            port=9000 + self.join_counter,
            base_mbps=self.config.join_guarantee.mbps_value,
            current_mbps=self.config.join_guarantee.mbps_value,
            joined=True,
        )
        self.statements[identifier] = info
        self._emit(
            TenantJoin(
                self._next_index(),
                self.time,
                added=(
                    DeltaStatement(
                        self._statement_for(identifier, info),
                        guarantee=Bandwidth.mbps(info.current_mbps),
                    ),
                ),
            )
        )
        return True

    def _emit_leave(self) -> bool:
        joined = sorted(
            identifier
            for identifier, info in self.statements.items()
            if info.joined
        )
        if not joined:
            return False
        identifier = self.rng.choice(joined)
        del self.statements[identifier]
        self._emit(
            TenantLeave(self._next_index(), self.time, identifiers=(identifier,))
        )
        return True

    def _emit_renegotiation(self) -> bool:
        pod_index = self.rng.randrange(len(self.population.pods))
        members = sorted(
            identifier
            for identifier, info in self.statements.items()
            if info.pod == pod_index
        )
        if not members:
            return False
        multiplier = self._demand_multiplier(self.time)
        updates = []
        for identifier in members:
            info = self.statements[identifier]
            new_mbps = round(info.base_mbps * multiplier, 3)
            if abs(new_mbps - info.current_mbps) < 1e-9:
                continue
            info.current_mbps = new_mbps
            updates.append(
                RateUpdate(identifier, guarantee=Bandwidth.mbps(new_mbps))
            )
        if not updates:
            return False
        self._emit(
            RateRenegotiation(self._next_index(), self.time, updates=tuple(updates))
        )
        return True

    def _emit_rewrite(self) -> bool:
        # Only base statements toggle through DPI; joined tenants churn too
        # fast for a middlebox contract.
        candidates = sorted(
            identifier
            for identifier, info in self.statements.items()
            if not info.joined
        )
        if not candidates:
            return False
        identifier = self.rng.choice(candidates)
        info = self.statements[identifier]
        info.through_dpi = not info.through_dpi
        self._emit(
            MiddleboxRewrite(
                self._next_index(),
                self.time,
                identifier=identifier,
                replacement=(
                    DeltaStatement(
                        self._statement_for(identifier, info),
                        guarantee=Bandwidth.mbps(info.current_mbps),
                    ),
                ),
                through="dpi" if info.through_dpi else "plain",
            )
        )
        return True

    # -- the main loop ------------------------------------------------------

    def build(self) -> List[ScenarioEvent]:
        kinds = [kind for kind, _ in self.config.kind_weights]
        weights = [weight for _, weight in self.config.kind_weights]
        total = sum(weights)
        while len(self.events) < self.config.events:
            advance = self.rng.expovariate(1.0 / self.config.mean_interarrival)
            candidate_time = self.time + advance
            if self.pending and self.pending[0][0] <= candidate_time:
                repair_time, _, kind, payload = heapq.heappop(self.pending)
                self.time = max(self.time, repair_time)
                self._emit_repair(kind, payload)
                continue
            self.time = candidate_time
            draw = self.rng.uniform(0.0, total)
            cumulative = 0.0
            kind = kinds[-1]
            for name, weight in zip(kinds, weights):
                cumulative += weight
                if draw <= cumulative:
                    kind = name
                    break
            emitted = False
            if kind in ("link-failure", "switch-failure"):
                emitted = self._emit_failure(kind)
            elif kind == "tenant-join":
                emitted = self._emit_join()
            elif kind == "tenant-leave":
                emitted = self._emit_leave()
            elif kind == "renegotiation":
                emitted = self._emit_renegotiation()
            elif kind == "middlebox-rewrite":
                emitted = self._emit_rewrite()
            if not emitted and kind != "renegotiation":
                # Infeasible kinds (no safe failure candidate, nothing
                # joined, ...) degrade to the always-available demand
                # adjustment rather than skipping the slot.
                emitted = self._emit_renegotiation()
            if not emitted:
                # A renegotiation that changed nothing (multiplier landed
                # exactly on the current rates): force a join so the stream
                # length stays exact.
                self._emit_join() or self._emit_leave() or self._emit_rewrite()
        return self.events


def generate_scenario(config: ScenarioConfig = ScenarioConfig()) -> Scenario:
    """Build the population and the deterministic event stream."""
    population = build_population(config)
    builder = _StreamBuilder(config, population)
    events = tuple(builder.build())
    return Scenario(config=config, population=population, events=events)
