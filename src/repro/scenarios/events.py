"""Typed scenario events — the vocabulary of churn & failure streams.

Every event is a frozen dataclass carrying its position in the stream
(``index``), its simulated occurrence time in seconds (``time``), and the
payload needed to turn it into a delta.  ``to_delta()`` produces the
:class:`~repro.incremental.delta.PolicyDelta` or
:class:`~repro.incremental.delta.TopologyDelta` that
:meth:`~repro.core.session.Session.apply` consumes, so a driver replays a
stream with no event-type dispatch of its own.

``describe()`` renders one canonical line per event;
:func:`serialize_events` joins them.  The serialization is the determinism
oracle: two runs of the generator with the same config must produce
byte-identical serializations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..incremental.delta import (
    DeltaStatement,
    PolicyDelta,
    RateUpdate,
    TopologyDelta,
)


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class: position and simulated time of one stream event."""

    index: int
    time: float

    kind: str = ""  # overridden as a class attribute by every subclass

    def to_delta(self):
        """The policy or topology delta this event applies."""
        raise NotImplementedError

    def describe(self) -> str:
        """One canonical line; see :func:`serialize_events`."""
        return f"[{self.index:04d} t={self.time:.3f}] {self.kind} {self._payload()}"

    def _payload(self) -> str:
        raise NotImplementedError


def _link_str(link: Tuple[str, str]) -> str:
    return f"{link[0]}~{link[1]}"


@dataclass(frozen=True)
class LinkFailure(ScenarioEvent):
    """A fabric link goes down."""

    link: Tuple[str, str] = ("", "")
    kind: str = "link-failure"

    def to_delta(self) -> TopologyDelta:
        return TopologyDelta(fail_links=(self.link,))

    def _payload(self) -> str:
        return _link_str(self.link)


@dataclass(frozen=True)
class LinkRecovery(ScenarioEvent):
    """A previously failed fabric link comes back."""

    link: Tuple[str, str] = ("", "")
    kind: str = "link-recovery"

    def to_delta(self) -> TopologyDelta:
        return TopologyDelta(recover_links=(self.link,))

    def _payload(self) -> str:
        return _link_str(self.link)


@dataclass(frozen=True)
class SwitchFailure(ScenarioEvent):
    """A switch goes down (taking all its incident links with it)."""

    switch: str = ""
    kind: str = "switch-failure"

    def to_delta(self) -> TopologyDelta:
        return TopologyDelta(fail_nodes=(self.switch,))

    def _payload(self) -> str:
        return self.switch


@dataclass(frozen=True)
class SwitchRecovery(ScenarioEvent):
    """A previously failed switch comes back."""

    switch: str = ""
    kind: str = "switch-recovery"

    def to_delta(self) -> TopologyDelta:
        return TopologyDelta(recover_nodes=(self.switch,))

    def _payload(self) -> str:
        return self.switch


@dataclass(frozen=True)
class TenantJoin(ScenarioEvent):
    """New guaranteed statements enter the policy (a tenant arrives)."""

    added: Tuple[DeltaStatement, ...] = ()
    kind: str = "tenant-join"

    def to_delta(self) -> PolicyDelta:
        return PolicyDelta(add=self.added)

    def _payload(self) -> str:
        parts = []
        for entry in self.added:
            guarantee = (
                f"{entry.guarantee.bps_value / 1e6:.3f}Mbps"
                if entry.guarantee is not None
                else "-"
            )
            parts.append(f"{entry.statement.identifier}@{guarantee}")
        return " ".join(parts)


@dataclass(frozen=True)
class TenantLeave(ScenarioEvent):
    """Previously joined statements leave the policy."""

    identifiers: Tuple[str, ...] = ()
    kind: str = "tenant-leave"

    def to_delta(self) -> PolicyDelta:
        return PolicyDelta(remove=self.identifiers)

    def _payload(self) -> str:
        return " ".join(self.identifiers)


@dataclass(frozen=True)
class RateRenegotiation(ScenarioEvent):
    """Existing statements renegotiate their guarantees (diurnal / flash)."""

    updates: Tuple[RateUpdate, ...] = ()
    kind: str = "renegotiation"

    def to_delta(self) -> PolicyDelta:
        return PolicyDelta(update_rates=self.updates)

    def _payload(self) -> str:
        parts = []
        for update in self.updates:
            guarantee = (
                f"{update.guarantee.bps_value / 1e6:.3f}Mbps"
                if update.guarantee is not None
                else "-"
            )
            parts.append(f"{update.identifier}={guarantee}")
        return " ".join(parts)


@dataclass(frozen=True)
class MiddleboxRewrite(ScenarioEvent):
    """A statement's middlebox chain changes (path rewrite, same identifier).

    Carried as the replacement statement with its current rates; the delta
    is the remove+add pair ``recompile`` expects for a changed statement.
    """

    identifier: str = ""
    replacement: Tuple[DeltaStatement, ...] = ()
    through: str = ""  # "dpi" when the chain is inserted, "plain" when removed
    kind: str = "middlebox-rewrite"

    def to_delta(self) -> PolicyDelta:
        return PolicyDelta(remove=(self.identifier,), add=self.replacement)

    def _payload(self) -> str:
        return f"{self.identifier}->{self.through}"


def serialize_events(events: Iterable[ScenarioEvent]) -> str:
    """The canonical text form of a stream (the determinism oracle)."""
    return "\n".join(event.describe() for event in events)
