"""Churn & failure scenario engine.

Seeded, deterministic streams of network churn — link/switch failures and
recoveries, tenant join/leave waves, diurnal and flash-crowd rate
renegotiations, middlebox-chain rewrites — as typed
:class:`~repro.scenarios.events.ScenarioEvent` objects, plus a driver that
replays a stream against a live transactional compiler session and the
fluid simulator in lockstep.

* :mod:`repro.scenarios.events` — the event vocabulary; every event knows
  the :class:`PolicyDelta` / :class:`TopologyDelta` it applies.
* :mod:`repro.scenarios.generator` — :func:`generate_scenario` builds a
  fat-tree population (with per-pod backup chains and middleboxes sized so
  failures exercise the slack-widening ladder) and a reproducible stream.
* :mod:`repro.scenarios.driver` — :func:`replay` applies the stream through
  :meth:`MerlinCompiler.session`, recording latency percentiles,
  availability, rollbacks/invalidations, and widening recoveries, then
  verifies the final session allocation against a from-scratch compile.
"""

from .driver import EventRecord, ReplayReport, allocations_match, replay
from .events import (
    LinkFailure,
    LinkRecovery,
    MiddleboxRewrite,
    RateRenegotiation,
    ScenarioEvent,
    SwitchFailure,
    SwitchRecovery,
    TenantJoin,
    TenantLeave,
    serialize_events,
)
from .generator import (
    Scenario,
    ScenarioConfig,
    ScenarioPopulation,
    build_population,
    generate_scenario,
)

__all__ = [
    "EventRecord",
    "ReplayReport",
    "allocations_match",
    "replay",
    "ScenarioEvent",
    "LinkFailure",
    "LinkRecovery",
    "SwitchFailure",
    "SwitchRecovery",
    "TenantJoin",
    "TenantLeave",
    "RateRenegotiation",
    "MiddleboxRewrite",
    "serialize_events",
    "Scenario",
    "ScenarioConfig",
    "ScenarioPopulation",
    "build_population",
    "generate_scenario",
]
