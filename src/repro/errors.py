"""Exception hierarchy for the Merlin reproduction.

All exceptions raised by the library derive from :class:`MerlinError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class MerlinError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class UnitError(MerlinError, ValueError):
    """Raised when a bandwidth value or unit cannot be parsed."""


class LexerError(MerlinError, SyntaxError):
    """Raised when the policy lexer encounters an invalid character."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(MerlinError, SyntaxError):
    """Raised when the policy, predicate, or path-expression parser fails."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PolicyError(MerlinError):
    """Raised for semantically invalid policies.

    Examples include statements with overlapping predicates, formulas that
    refer to undefined statement identifiers, or negative bandwidth amounts.
    """


class FieldError(MerlinError, KeyError):
    """Raised when a predicate references an unknown packet header field."""


class TopologyError(MerlinError):
    """Raised for malformed topologies or invalid topology queries."""


class PlacementError(MerlinError):
    """Raised when a packet-processing function has no feasible placement."""


class ProvisioningError(MerlinError):
    """Raised when path selection or bandwidth provisioning fails.

    The most common cause is an infeasible constraint system: the requested
    guarantees exceed the capacity of every path allowed by the policy.
    """


class SolverError(MerlinError):
    """Raised when the LP/MIP substrate cannot solve a model."""


class InfeasibleError(SolverError):
    """Raised when a model is proven infeasible."""


class UnboundedError(SolverError):
    """Raised when a model is unbounded in the optimization direction."""


class CodegenError(MerlinError):
    """Raised when instruction generation fails for a target device."""


class DelegationError(MerlinError):
    """Raised when a policy cannot be delegated (projected) to a tenant."""


class VerificationError(MerlinError):
    """Raised when a delegated policy fails refinement verification."""


class SimulationError(MerlinError):
    """Raised for invalid simulator configurations or runtime failures."""
