"""Satisfiability, disjointness, and implication for Merlin predicates.

The paper uses the Z3 SMT solver to decide predicate disjointness and
implication during negotiator verification.  Merlin predicates are
propositional formulas over equality tests on packet header fields, so full
SMT machinery is unnecessary; this module implements a small backtracking
decision procedure specialised to that theory:

* the predicate is put in negation normal form,
* a depth-first search maintains a per-field environment (either "must equal
  v" or "must differ from {v1, ..., vk}"),
* conjunctions push obligations, disjunctions branch with backtracking, and
* a finite-domain check catches fields whose every value has been excluded
  (e.g. the 8-value ``vlan.pcp``).

Unlike the obvious DNF expansion, the search handles the conjunctions of
negated conjunctions produced by totality/coverage checks (``p0 and !p1 and
... and !pn``) in linear time on the policies Merlin actually generates,
which is what lets negotiator verification scale to tens of thousands of
statements (Figure 9).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import PolicyError
from .ast import (
    And,
    FieldTest,
    Not,
    Or,
    PFalse,
    Predicate,
    PTrue,
    pred_and,
    pred_not,
    pred_or,
)
from .fields import domain_size
from .transform import to_nnf

#: Safety valve: the number of branch decisions after which the search gives
#: up and raises (never hit by realistic policies; prevents silent hangs on
#: adversarial inputs).
MAX_BRANCH_STEPS = 5_000_000


class _Environment:
    """A partial assignment of header fields with backtracking support."""

    __slots__ = ("fixed", "excluded", "_trail")

    def __init__(self) -> None:
        self.fixed: Dict[str, object] = {}
        self.excluded: Dict[str, Set[object]] = {}
        self._trail: List[Tuple[str, str, object]] = []

    # -- assignment ---------------------------------------------------------

    def mark(self) -> int:
        """A checkpoint for backtracking."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Undo every change made after the checkpoint."""
        while len(self._trail) > mark:
            kind, field, value = self._trail.pop()
            if kind == "fix":
                del self.fixed[field]
            else:
                self.excluded[field].discard(value)

    def assert_equal(self, field: str, value: object) -> bool:
        """Require ``field == value``; returns False on contradiction."""
        if field in self.fixed:
            return self.fixed[field] == value
        if value in self.excluded.get(field, ()):
            return False
        self.fixed[field] = value
        self._trail.append(("fix", field, value))
        return True

    def assert_not_equal(self, field: str, value: object) -> bool:
        """Require ``field != value``; returns False on contradiction."""
        if field in self.fixed:
            return self.fixed[field] != value
        exclusions = self.excluded.setdefault(field, set())
        if value not in exclusions:
            exclusions.add(value)
            self._trail.append(("exclude", field, value))
            size = domain_size(field)
            if size is not None and len(exclusions) >= size:
                # Every value of a finite domain is excluded: contradiction.
                return False
        return True


class _Budget:
    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps = 0

    def spend(self) -> None:
        self.steps += 1
        if self.steps > MAX_BRANCH_STEPS:
            raise PolicyError(
                "predicate satisfiability search exceeded its branch budget"
            )


def _search(root: Predicate) -> bool:
    """Decide satisfiability of an NNF predicate by iterative backtracking.

    The pending obligations form a persistent cons-list ``(goal, rest)`` so
    that disjunction choice points can resume the exact remaining work in
    O(1) without copying; the environment records a trail for undo.
    """
    env = _Environment()
    budget = _Budget()
    goals: Optional[Tuple[Predicate, object]] = (root, None)
    # Each choice point: (untried branch, goals after resuming, environment mark).
    choice_points: List[Tuple[Predicate, object, int]] = []

    def backtrack() -> bool:
        nonlocal goals
        while choice_points:
            branch, rest, mark = choice_points.pop()
            env.undo_to(mark)
            goals = (branch, rest)
            return True
        return False

    while True:
        if goals is None:
            return True
        goal, rest = goals
        goals = rest
        budget.spend()
        if isinstance(goal, PTrue):
            continue
        if isinstance(goal, PFalse):
            if not backtrack():
                return False
            continue
        if isinstance(goal, FieldTest):
            if not env.assert_equal(goal.field, goal.value):
                if not backtrack():
                    return False
            continue
        if isinstance(goal, Not):
            operand = goal.operand
            if not isinstance(operand, FieldTest):
                raise PolicyError("satisfiability input is not in negation normal form")
            if not env.assert_not_equal(operand.field, operand.value):
                if not backtrack():
                    return False
            continue
        if isinstance(goal, And):
            goals = (goal.left, (goal.right, goals))
            continue
        if isinstance(goal, Or):
            choice_points.append((goal.right, goals, env.mark()))
            goals = (goal.left, goals)
            continue
        raise PolicyError(f"unknown predicate node: {goal!r}")


def is_satisfiable(predicate: Predicate) -> bool:
    """Return ``True`` if some packet satisfies ``predicate``."""
    return _search(to_nnf(predicate))


def is_disjoint(left: Predicate, right: Predicate) -> bool:
    """Return ``True`` when no packet matches both predicates."""
    return not is_satisfiable(pred_and(left, right))


def implies(antecedent: Predicate, consequent: Predicate) -> bool:
    """Return ``True`` when every packet matching ``antecedent`` matches ``consequent``."""
    return not is_satisfiable(pred_and(antecedent, pred_not(consequent)))


def equivalent(left: Predicate, right: Predicate) -> bool:
    """Return ``True`` when the two predicates match exactly the same packets."""
    return implies(left, right) and implies(right, left)


def overlaps(left: Predicate, right: Predicate) -> bool:
    """Return ``True`` when some packet matches both predicates."""
    return not is_disjoint(left, right)


def pairwise_disjoint(predicates: Sequence[Predicate]) -> bool:
    """Return ``True`` when all predicates in the sequence are pairwise disjoint."""
    items = list(predicates)
    for index, left in enumerate(items):
        for right in items[index + 1 :]:
            if not is_disjoint(left, right):
                return False
    return True


def find_overlapping_pairs(predicates: Sequence[Predicate]) -> List[tuple]:
    """Return the index pairs of predicates that overlap (for error messages)."""
    items = list(predicates)
    pairs = []
    for i, left in enumerate(items):
        for j in range(i + 1, len(items)):
            if not is_disjoint(left, items[j]):
                pairs.append((i, j))
    return pairs


def covers(original: Predicate, parts: Iterable[Predicate]) -> bool:
    """Return ``True`` when the union of ``parts`` covers all of ``original``.

    This is the totality condition on tenant refinements from §4.1: "all
    packets identified by the original policy must be identified by the set
    of new policies."
    """
    union = pred_or(*list(parts))
    return implies(original, union)


def is_partition(original: Predicate, parts: Sequence[Predicate]) -> bool:
    """Return ``True`` when ``parts`` is a valid refinement partition of ``original``.

    A valid partition (i) covers the original predicate, (ii) never matches a
    packet outside the original, and (iii) has pairwise-disjoint members.
    """
    part_list = list(parts)
    if not covers(original, part_list):
        return False
    if not all(implies(part, original) for part in part_list):
        return False
    return pairwise_disjoint(part_list)
