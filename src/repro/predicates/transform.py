"""Predicate normalisation and partitioning transforms.

These transforms back both the pre-processor (which must complete a policy
with a catch-all statement and check disjointness) and the negotiator
verification machinery (which compares tenant refinements against the parent
policy).  The central normal form is disjunctive normal form (DNF) over
*literals* — positive or negated field tests — because satisfiability of a
DNF conjunct reduces to simple per-field set reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import PolicyError
from .ast import (
    FALSE,
    TRUE,
    And,
    FieldTest,
    Not,
    Or,
    PFalse,
    Predicate,
    PTrue,
    pred_and,
    pred_not,
    pred_or,
)
from .fields import domain_size

#: Safety valve against exponential DNF blow-up.  Real Merlin policies have
#: small predicates (a handful of conjuncts per statement), so this limit is
#: never hit in practice; it exists to fail loudly instead of hanging.
MAX_DNF_TERMS = 100_000


def to_nnf(predicate: Predicate) -> Predicate:
    """Push negations down to the atoms (negation normal form)."""
    if isinstance(predicate, (PTrue, PFalse, FieldTest)):
        return predicate
    if isinstance(predicate, And):
        return pred_and(to_nnf(predicate.left), to_nnf(predicate.right))
    if isinstance(predicate, Or):
        return pred_or(to_nnf(predicate.left), to_nnf(predicate.right))
    if isinstance(predicate, Not):
        inner = predicate.operand
        if isinstance(inner, PTrue):
            return FALSE
        if isinstance(inner, PFalse):
            return TRUE
        if isinstance(inner, FieldTest):
            return Not(inner)
        if isinstance(inner, Not):
            return to_nnf(inner.operand)
        if isinstance(inner, And):
            return pred_or(to_nnf(pred_not(inner.left)), to_nnf(pred_not(inner.right)))
        if isinstance(inner, Or):
            return pred_and(to_nnf(pred_not(inner.left)), to_nnf(pred_not(inner.right)))
    raise TypeError(f"unknown predicate node: {predicate!r}")


@dataclass(frozen=True)
class Literal:
    """A positive or negated atomic field test."""

    field: str
    value: Any
    positive: bool

    def negate(self) -> "Literal":
        return Literal(self.field, self.value, not self.positive)

    def to_predicate(self) -> Predicate:
        test = FieldTest(self.field, self.value)
        return test if self.positive else Not(test)


#: A DNF conjunct: a frozen set of literals, all of which must hold.
Conjunct = FrozenSet[Literal]


def to_dnf(predicate: Predicate) -> List[Conjunct]:
    """Convert a predicate to a list of DNF conjuncts.

    The empty list denotes ``false``; a list containing the empty conjunct
    denotes ``true``.  Obviously-contradictory conjuncts (the same field both
    required equal to and different from the same value, or required equal to
    two different values) are dropped eagerly.
    """
    normalized = to_nnf(predicate)
    terms = _dnf(normalized)
    return [term for term in terms if _conjunct_consistent(term)]


def _dnf(predicate: Predicate) -> List[Conjunct]:
    if isinstance(predicate, PTrue):
        return [frozenset()]
    if isinstance(predicate, PFalse):
        return []
    if isinstance(predicate, FieldTest):
        return [frozenset({Literal(predicate.field, predicate.value, True)})]
    if isinstance(predicate, Not):
        inner = predicate.operand
        if isinstance(inner, FieldTest):
            return [frozenset({Literal(inner.field, inner.value, False)})]
        raise PolicyError("predicate is not in negation normal form")
    if isinstance(predicate, Or):
        return _dnf(predicate.left) + _dnf(predicate.right)
    if isinstance(predicate, And):
        left_terms = _dnf(predicate.left)
        right_terms = _dnf(predicate.right)
        if len(left_terms) * len(right_terms) > MAX_DNF_TERMS:
            raise PolicyError(
                "predicate too large to convert to DNF "
                f"({len(left_terms)} x {len(right_terms)} terms)"
            )
        return [left | right for left in left_terms for right in right_terms]
    raise TypeError(f"unknown predicate node: {predicate!r}")


def _conjunct_consistent(conjunct: Conjunct) -> bool:
    """Quick per-field consistency check for a single conjunct."""
    required: Dict[str, Any] = {}
    excluded: Dict[str, Set[Any]] = {}
    for literal in conjunct:
        if literal.positive:
            if literal.field in required and required[literal.field] != literal.value:
                return False
            required[literal.field] = literal.value
        else:
            excluded.setdefault(literal.field, set()).add(literal.value)
    for name, value in required.items():
        if value in excluded.get(name, ()):
            return False
    for name, values in excluded.items():
        if name in required:
            continue
        size = domain_size(name)
        if size is not None and len(values) >= size:
            return False
    return True


def conjunct_to_predicate(conjunct: Conjunct) -> Predicate:
    """Rebuild a predicate AST from a DNF conjunct (``true`` if empty)."""
    literals = sorted(conjunct, key=lambda lit: (lit.field, str(lit.value), lit.positive))
    return pred_and(*[literal.to_predicate() for literal in literals])


def dnf_to_predicate(terms: List[Conjunct]) -> Predicate:
    """Rebuild a predicate AST from a DNF term list (``false`` if empty)."""
    return pred_or(*[conjunct_to_predicate(term) for term in terms])


def simplify(predicate: Predicate) -> Predicate:
    """Return an equivalent, syntactically smaller predicate.

    The simplification is DNF-based: contradictory conjuncts are removed and
    conjuncts subsumed by another conjunct (a superset of its literals) are
    dropped.  The result is not guaranteed to be minimal, only equivalent.
    """
    terms = to_dnf(predicate)
    kept: List[Conjunct] = []
    for term in terms:
        if any(other <= term for other in terms if other is not term and other < term):
            continue
        if term not in kept:
            kept.append(term)
    return dnf_to_predicate(kept)


def intersect(left: Predicate, right: Predicate) -> Predicate:
    """The conjunction of two predicates (the packet set intersection)."""
    return pred_and(left, right)


def subtract(left: Predicate, right: Predicate) -> Predicate:
    """The predicate matching packets in ``left`` but not in ``right``."""
    return pred_and(left, pred_not(right))


def atoms(predicate: Predicate) -> Set[Tuple[str, Any]]:
    """Return the set of (field, value) pairs appearing in the predicate."""
    found: Set[Tuple[str, Any]] = set()

    def walk(node: Predicate) -> None:
        if isinstance(node, FieldTest):
            found.add((node.field, node.value))
        for child in node.children():
            walk(child)

    walk(predicate)
    return found
