"""Catalogue of packet header fields understood by Merlin predicates.

The paper supports "atomic predicates for a number of standard protocols
including Ethernet, IP, TCP, and UDP, and a special predicate for matching
packet payloads".  Each field has a name (``"tcp.dst"``), a domain size (the
number of distinct values the field can take), and value normalisation, which
the satisfiability checker uses to reason about negated equality tests
(``tcp.dst != 80`` is satisfiable because the port domain has more than one
value).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..errors import FieldError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{1,2})(:[0-9a-fA-F]{1,2}){5}$")
_IPV4_RE = re.compile(r"^(\d{1,3})(\.\d{1,3}){3}$")

_PROTO_NAMES = {"icmp": 1, "igmp": 2, "tcp": 6, "udp": 17, "gre": 47, "esp": 50}
_ETHERTYPE_NAMES = {"ip": 0x0800, "arp": 0x0806, "ipv6": 0x86DD, "vlan": 0x8100}


def _normalize_mac(value: Any) -> str:
    text = str(value).strip().lower().replace("-", ":")
    if not _MAC_RE.match(text):
        raise FieldError(f"invalid MAC address: {value!r}")
    return ":".join(part.zfill(2) for part in text.split(":"))


def _normalize_ipv4(value: Any) -> str:
    text = str(value).strip()
    if not _IPV4_RE.match(text):
        raise FieldError(f"invalid IPv4 address: {value!r}")
    octets = [int(octet) for octet in text.split(".")]
    if any(octet > 255 for octet in octets):
        raise FieldError(f"invalid IPv4 address: {value!r}")
    return ".".join(str(octet) for octet in octets)


def _normalize_int(width_bits: int) -> Callable[[Any], int]:
    maximum = (1 << width_bits) - 1

    def normalize(value: Any) -> int:
        if isinstance(value, str):
            text = value.strip().lower()
            number = int(text, 16) if text.startswith("0x") else int(text)
        else:
            number = int(value)
        if not 0 <= number <= maximum:
            raise FieldError(
                f"value {value!r} out of range for a {width_bits}-bit field"
            )
        return number

    return normalize


def _normalize_proto(value: Any) -> int:
    if isinstance(value, str):
        name = value.strip().lower()
        if name in _PROTO_NAMES:
            return _PROTO_NAMES[name]
    return _normalize_int(8)(value)


def _normalize_ethertype(value: Any) -> int:
    if isinstance(value, str):
        name = value.strip().lower()
        if name in _ETHERTYPE_NAMES:
            return _ETHERTYPE_NAMES[name]
    return _normalize_int(16)(value)


def _normalize_payload(value: Any) -> str:
    return str(value)


@dataclass(frozen=True)
class FieldSpec:
    """Description of a single packet header field.

    ``domain_size`` is ``None`` for effectively unbounded domains (payload
    patterns); such fields are treated as having infinitely many values by
    the satisfiability checker, so any finite set of exclusions leaves the
    field satisfiable.
    """

    name: str
    description: str
    domain_size: Optional[int]
    normalize: Callable[[Any], Any]


#: All header fields Merlin predicates may test, keyed by qualified name.
FIELD_CATALOG: Dict[str, FieldSpec] = {
    spec.name: spec
    for spec in [
        FieldSpec("eth.src", "Ethernet source MAC address", 2**48, _normalize_mac),
        FieldSpec("eth.dst", "Ethernet destination MAC address", 2**48, _normalize_mac),
        FieldSpec("eth.type", "EtherType", 2**16, _normalize_ethertype),
        FieldSpec("vlan.id", "VLAN identifier", 4096, _normalize_int(12)),
        FieldSpec("vlan.pcp", "VLAN priority code point", 8, _normalize_int(3)),
        FieldSpec("ip.src", "IPv4 source address", 2**32, _normalize_ipv4),
        FieldSpec("ip.dst", "IPv4 destination address", 2**32, _normalize_ipv4),
        FieldSpec("ip.proto", "IP protocol number", 256, _normalize_proto),
        FieldSpec("ip.tos", "IP type of service", 256, _normalize_int(8)),
        FieldSpec("tcp.src", "TCP source port", 2**16, _normalize_int(16)),
        FieldSpec("tcp.dst", "TCP destination port", 2**16, _normalize_int(16)),
        FieldSpec("udp.src", "UDP source port", 2**16, _normalize_int(16)),
        FieldSpec("udp.dst", "UDP destination port", 2**16, _normalize_int(16)),
        FieldSpec("icmp.type", "ICMP message type", 256, _normalize_int(8)),
        FieldSpec("icmp.code", "ICMP message code", 256, _normalize_int(8)),
        FieldSpec("payload", "Packet payload pattern", None, _normalize_payload),
    ]
}


def field_spec(name: str) -> FieldSpec:
    """Look up a field by qualified name, raising :class:`FieldError` if unknown."""
    try:
        return FIELD_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(FIELD_CATALOG))
        raise FieldError(f"unknown header field {name!r}; known fields: {known}") from None


def normalize_value(field_name: str, value: Any) -> Any:
    """Normalise ``value`` to the canonical representation for ``field_name``."""
    return field_spec(field_name).normalize(value)


def domain_size(field_name: str) -> Optional[int]:
    """Return the number of values ``field_name`` can take (``None`` = unbounded)."""
    return field_spec(field_name).domain_size
