"""Predicate evaluation against packets.

Used by the end-host interpreter backend, the flow simulator (to decide which
statement a flow falls under), and the test suite (to cross-check the symbolic
satisfiability procedure against concrete packets).
"""

from __future__ import annotations

from ..errors import FieldError
from ..packet import Packet
from .ast import And, FieldTest, Not, Or, PFalse, Predicate, PTrue
from .fields import normalize_value


def matches(predicate: Predicate, packet: Packet) -> bool:
    """Return ``True`` when ``packet`` satisfies ``predicate``.

    A field test on a header that the packet does not carry evaluates to
    ``False`` (e.g. ``tcp.dst = 80`` does not match a UDP packet), matching
    the behaviour of OpenFlow match semantics and of the paper's examples.
    """
    if isinstance(predicate, PTrue):
        return True
    if isinstance(predicate, PFalse):
        return False
    if isinstance(predicate, FieldTest):
        if predicate.field not in packet:
            return False
        try:
            actual = normalize_value(predicate.field, packet.get(predicate.field))
        except FieldError:
            return False
        return actual == predicate.value
    if isinstance(predicate, And):
        return matches(predicate.left, packet) and matches(predicate.right, packet)
    if isinstance(predicate, Or):
        return matches(predicate.left, packet) or matches(predicate.right, packet)
    if isinstance(predicate, Not):
        return not matches(predicate.operand, packet)
    raise TypeError(f"unknown predicate node: {predicate!r}")
