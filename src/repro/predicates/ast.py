"""Abstract syntax for Merlin packet-classification predicates.

The grammar (Figure 1 of the paper) is::

    p ::= h.f = n | true | false | p and p | p or p | ! p

Predicate values are immutable and hashable; structural equality is used
throughout the compiler (e.g. when the pre-processor deduplicates statements
or the negotiator matches statements between parent and child policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Tuple

from .fields import normalize_value


class Predicate:
    """Base class for all predicate AST nodes."""

    def fields(self) -> FrozenSet[str]:
        """Return the set of header field names tested by this predicate."""
        raise NotImplementedError

    def children(self) -> Tuple["Predicate", ...]:
        """Return immediate sub-predicates (empty for atoms)."""
        return ()

    def size(self) -> int:
        """Number of AST nodes, used for complexity metrics in benchmarks."""
        return 1 + sum(child.size() for child in self.children())

    # Operator sugar so that tests and examples can write ``p & q``.
    def __and__(self, other: "Predicate") -> "Predicate":
        return pred_and(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return pred_or(self, other)

    def __invert__(self) -> "Predicate":
        return pred_not(self)


@dataclass(frozen=True)
class PTrue(Predicate):
    """The predicate matching every packet."""

    def fields(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class PFalse(Predicate):
    """The predicate matching no packet."""

    def fields(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class FieldTest(Predicate):
    """An atomic test ``h.f = n`` on a single header field."""

    field: str
    value: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", normalize_value(self.field, self.value))

    def fields(self) -> FrozenSet[str]:
        return frozenset({self.field})

    def __str__(self) -> str:
        return f"{self.field} = {self.value}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def fields(self) -> FrozenSet[str]:
        return self.left.fields() | self.right.fields()

    def children(self) -> Tuple[Predicate, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def fields(self) -> FrozenSet[str]:
        return self.left.fields() | self.right.fields()

    def children(self) -> Tuple[Predicate, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def fields(self) -> FrozenSet[str]:
        return self.operand.fields()

    def children(self) -> Tuple[Predicate, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


#: Singletons for the constant predicates.
TRUE = PTrue()
FALSE = PFalse()


def _balanced(operands, node_type: type) -> Predicate:
    """Build a balanced binary tree of ``node_type`` over ``operands``.

    Balancing keeps the AST depth logarithmic in the number of operands, so
    the recursive transforms (NNF, DNF, satisfiability search) never hit
    Python's recursion limit even for the thousands-of-statements unions the
    negotiator verification of Figure 9 constructs.
    """
    if len(operands) == 1:
        return operands[0]
    middle = len(operands) // 2
    return node_type(
        _balanced(operands[:middle], node_type), _balanced(operands[middle:], node_type)
    )


def pred_and(*predicates: Predicate) -> Predicate:
    """Conjoin predicates, folding away constants.

    ``pred_and()`` is ``true``; ``false`` absorbs; ``true`` is the identity.
    The result is a balanced tree of ``And`` nodes.
    """
    operands = []
    for predicate in predicates:
        if isinstance(predicate, PFalse):
            return FALSE
        if isinstance(predicate, PTrue):
            continue
        operands.append(predicate)
    if not operands:
        return TRUE
    return _balanced(operands, And)


def pred_or(*predicates: Predicate) -> Predicate:
    """Disjoin predicates, folding away constants (balanced tree of ``Or`` nodes)."""
    operands = []
    for predicate in predicates:
        if isinstance(predicate, PTrue):
            return TRUE
        if isinstance(predicate, PFalse):
            continue
        operands.append(predicate)
    if not operands:
        return FALSE
    return _balanced(operands, Or)


def pred_not(predicate: Predicate) -> Predicate:
    """Negate a predicate, collapsing double negation and constants."""
    if isinstance(predicate, PTrue):
        return FALSE
    if isinstance(predicate, PFalse):
        return TRUE
    if isinstance(predicate, Not):
        return predicate.operand
    return Not(predicate)


def field_test(field: str, value: Any) -> FieldTest:
    """Convenience constructor for an atomic ``field = value`` test."""
    return FieldTest(field, value)


def conjunction_of(tests: Iterable[Predicate]) -> Predicate:
    """Conjoin an iterable of predicates (useful when expanding sugar)."""
    return pred_and(*tests)
