"""Packet-classification predicates.

Merlin statements classify packets with logical predicates built from header
field tests (``tcp.dst = 80``), conjunction, disjunction, and negation.  This
package provides:

* the predicate abstract syntax (:mod:`repro.predicates.ast`),
* a catalogue of supported header fields (:mod:`repro.predicates.fields`),
* a concrete-syntax parser (:mod:`repro.predicates.parser`),
* evaluation against packets (:mod:`repro.predicates.evaluator`),
* a satisfiability/disjointness/implication decision procedure
  (:mod:`repro.predicates.sat`) used by the pre-processor and the negotiator
  verification machinery (the paper uses Z3 for this), and
* normalisation and partitioning transforms (:mod:`repro.predicates.transform`).
"""

from .ast import (
    And,
    FieldTest,
    Not,
    Or,
    PFalse,
    Predicate,
    PTrue,
    pred_and,
    pred_not,
    pred_or,
)
from .evaluator import matches
from .fields import FIELD_CATALOG, FieldSpec, normalize_value
from .parser import parse_predicate
from .sat import (
    equivalent,
    implies,
    is_disjoint,
    is_partition,
    is_satisfiable,
    pairwise_disjoint,
)
from .transform import intersect, simplify, to_dnf, to_nnf

__all__ = [
    "And",
    "FieldTest",
    "Not",
    "Or",
    "PFalse",
    "PTrue",
    "Predicate",
    "pred_and",
    "pred_not",
    "pred_or",
    "matches",
    "FIELD_CATALOG",
    "FieldSpec",
    "normalize_value",
    "parse_predicate",
    "equivalent",
    "implies",
    "is_disjoint",
    "is_partition",
    "is_satisfiable",
    "pairwise_disjoint",
    "intersect",
    "simplify",
    "to_dnf",
    "to_nnf",
]
