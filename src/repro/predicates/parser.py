"""Concrete-syntax parser for Merlin predicates.

Grammar (precedence low to high)::

    pred   ::= orExpr
    orExpr ::= andExpr ( 'or' andExpr )*
    andExpr::= unary ( 'and' unary )*
    unary  ::= '!' unary | atom
    atom   ::= '(' pred ')' | 'true' | 'false'
             | field '=' value | field '!=' value

``field '!=' value`` is syntactic sugar for ``!(field = value)`` — the paper
uses it in the delegation example of §4.1.  Values may be MAC addresses,
IPv4 addresses, decimal or hexadecimal numbers, or symbolic protocol names
(``tcp``, ``udp``, ``ip``); field-specific normalisation is applied by the
:class:`~repro.predicates.ast.FieldTest` constructor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ParseError
from .ast import FALSE, TRUE, FieldTest, Predicate, pred_and, pred_not, pred_or

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<mac>[0-9a-fA-F]{1,2}(?::[0-9a-fA-F]{1,2}){5})
  | (?P<ip>\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})
  | (?P<field>[A-Za-z_][A-Za-z0-9_]*\.[A-Za-z_][A-Za-z0-9_]*)
  | (?P<hex>0x[0-9a-fA-F]+)
  | (?P<num>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<neq>!=)
  | (?P<op>[()=!])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize_predicate(source: str) -> List[_Token]:
    """Split predicate source into tokens, raising on unrecognised input."""
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r} in predicate", column=position
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _PredicateParser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of predicate", column=len(self._source))
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind!r} but found {token.text!r}", column=token.position
            )
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "ident" and token.text == word

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Predicate:
        predicate = self._or_expr()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected trailing input {leftover.text!r} in predicate",
                column=leftover.position,
            )
        return predicate

    def _or_expr(self) -> Predicate:
        operands = [self._and_expr()]
        while self._at_keyword("or"):
            self._advance()
            operands.append(self._and_expr())
        return pred_or(*operands) if len(operands) > 1 else operands[0]

    def _and_expr(self) -> Predicate:
        operands = [self._unary()]
        while self._at_keyword("and"):
            self._advance()
            operands.append(self._unary())
        return pred_and(*operands) if len(operands) > 1 else operands[0]

    def _unary(self) -> Predicate:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text == "!":
            self._advance()
            return pred_not(self._unary())
        return self._atom()

    def _atom(self) -> Predicate:
        token = self._advance()
        if token.kind == "op" and token.text == "(":
            inner = self._or_expr()
            self._expect("op", ")")
            return inner
        if token.kind == "ident" and token.text == "true":
            return TRUE
        if token.kind == "ident" and token.text == "false":
            return FALSE
        if token.kind == "field":
            return self._field_test(token)
        raise ParseError(
            f"expected a predicate atom but found {token.text!r}", column=token.position
        )

    def _field_test(self, field_token: _Token) -> Predicate:
        operator = self._advance()
        negated = False
        if operator.kind == "neq":
            negated = True
        elif not (operator.kind == "op" and operator.text == "="):
            raise ParseError(
                f"expected '=' or '!=' after field {field_token.text!r}",
                column=operator.position,
            )
        value_token = self._advance()
        if value_token.kind not in {"mac", "ip", "hex", "num", "ident"}:
            raise ParseError(
                f"expected a value after {field_token.text!r}", column=value_token.position
            )
        test = FieldTest(field_token.text, value_token.text)
        return pred_not(test) if negated else test


def parse_predicate(source: str) -> Predicate:
    """Parse predicate concrete syntax into a :class:`Predicate` AST."""
    return _PredicateParser(tokenize_predicate(source), source).parse()
