"""Bandwidth values and unit handling.

Merlin policies attach rates to ``max``/``min`` clauses using strings such as
``50MB/s``, ``1Gbps``, or ``100Mbps``.  Internally the library represents
every rate as a :class:`Bandwidth` value measured in **bits per second**,
which keeps the compiler's arithmetic (localization splits, MIP coefficients,
simulator link capacities) in a single canonical unit.

The paper mixes byte-based (``MB/s``) and bit-based (``Mbps``) units; both are
supported, with decimal SI prefixes (1 kB = 1000 bytes), matching how network
link capacities are conventionally quoted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from .errors import UnitError

#: Multipliers from unit suffix to bits per second.
_BIT_UNITS = {
    "bps": 1.0,
    "kbps": 1e3,
    "mbps": 1e6,
    "gbps": 1e9,
    "tbps": 1e12,
}

_BYTE_UNITS = {
    "b/s": 8.0,
    "kb/s": 8e3,
    "mb/s": 8e6,
    "gb/s": 8e9,
    "tb/s": 8e12,
}

_UNIT_RE = re.compile(
    r"^\s*(?P<value>[0-9]+(?:\.[0-9]+)?)\s*(?P<unit>[a-zA-Z/]+)?\s*$"
)


@dataclass(frozen=True, order=True)
class Bandwidth:
    """A bandwidth amount in bits per second.

    Instances are immutable and totally ordered, and support addition,
    subtraction, and scaling so that formula localization (splitting an
    aggregate cap across statements) is straightforward arithmetic.
    """

    bits_per_second: float

    def __post_init__(self) -> None:
        if self.bits_per_second < 0:
            raise UnitError(
                f"bandwidth cannot be negative: {self.bits_per_second}"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def bps(value: float) -> "Bandwidth":
        """Create a bandwidth of ``value`` bits per second."""
        return Bandwidth(float(value))

    @staticmethod
    def kbps(value: float) -> "Bandwidth":
        """Create a bandwidth of ``value`` kilobits per second."""
        return Bandwidth(float(value) * 1e3)

    @staticmethod
    def mbps(value: float) -> "Bandwidth":
        """Create a bandwidth of ``value`` megabits per second."""
        return Bandwidth(float(value) * 1e6)

    @staticmethod
    def gbps(value: float) -> "Bandwidth":
        """Create a bandwidth of ``value`` gigabits per second."""
        return Bandwidth(float(value) * 1e9)

    @staticmethod
    def mb_per_sec(value: float) -> "Bandwidth":
        """Create a bandwidth of ``value`` megabytes per second."""
        return Bandwidth(float(value) * 8e6)

    @staticmethod
    def parse(text: Union[str, float, int, "Bandwidth"]) -> "Bandwidth":
        """Parse a bandwidth from a policy-source string.

        Accepts strings such as ``"50MB/s"``, ``"1Gbps"``, ``"100 Mbps"``, or
        a bare number (interpreted as bits per second).  Numbers and existing
        :class:`Bandwidth` values pass through unchanged.
        """
        if isinstance(text, Bandwidth):
            return text
        if isinstance(text, (int, float)):
            return Bandwidth(float(text))
        match = _UNIT_RE.match(text)
        if match is None:
            raise UnitError(f"cannot parse bandwidth: {text!r}")
        value = float(match.group("value"))
        unit = (match.group("unit") or "bps").lower()
        if unit in _BIT_UNITS:
            return Bandwidth(value * _BIT_UNITS[unit])
        if unit in _BYTE_UNITS:
            return Bandwidth(value * _BYTE_UNITS[unit])
        raise UnitError(f"unknown bandwidth unit {unit!r} in {text!r}")

    # -- conversions -------------------------------------------------------

    @property
    def bps_value(self) -> float:
        """The bandwidth in bits per second."""
        return self.bits_per_second

    @property
    def mbps_value(self) -> float:
        """The bandwidth in megabits per second."""
        return self.bits_per_second / 1e6

    @property
    def gbps_value(self) -> float:
        """The bandwidth in gigabits per second."""
        return self.bits_per_second / 1e9

    @property
    def mb_per_sec_value(self) -> float:
        """The bandwidth in megabytes per second."""
        return self.bits_per_second / 8e6

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Bandwidth") -> "Bandwidth":
        if not isinstance(other, Bandwidth):
            return NotImplemented
        return Bandwidth(self.bits_per_second + other.bits_per_second)

    def __sub__(self, other: "Bandwidth") -> "Bandwidth":
        if not isinstance(other, Bandwidth):
            return NotImplemented
        return Bandwidth(max(0.0, self.bits_per_second - other.bits_per_second))

    def __mul__(self, factor: float) -> "Bandwidth":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return Bandwidth(self.bits_per_second * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, divisor: Union[float, "Bandwidth"]):
        if isinstance(divisor, Bandwidth):
            if divisor.bits_per_second == 0:
                raise ZeroDivisionError("division by zero bandwidth")
            return self.bits_per_second / divisor.bits_per_second
        if isinstance(divisor, (int, float)):
            return Bandwidth(self.bits_per_second / float(divisor))
        return NotImplemented

    def split(self, parts: int) -> "Bandwidth":
        """Return the bandwidth divided equally across ``parts`` shares.

        This is the default localization rule from §3.1: an aggregate term
        over ``n`` identifiers is split into ``n`` equal local terms.
        """
        if parts <= 0:
            raise UnitError(f"cannot split bandwidth into {parts} parts")
        return Bandwidth(self.bits_per_second / parts)

    # -- formatting --------------------------------------------------------

    def __str__(self) -> str:
        return self.human()

    def human(self) -> str:
        """Render in the most natural bit-based unit, e.g. ``"400.00Mbps"``."""
        value = self.bits_per_second
        for suffix, factor in (
            ("Tbps", 1e12),
            ("Gbps", 1e9),
            ("Mbps", 1e6),
            ("kbps", 1e3),
        ):
            if value >= factor:
                return f"{value / factor:.2f}{suffix}"
        return f"{value:.2f}bps"

    def policy_literal(self) -> str:
        """Render as a literal suitable for re-emission in policy source."""
        mbps = self.mbps_value
        if abs(mbps - round(mbps)) < 1e-9 and mbps >= 1:
            return f"{int(round(mbps))}Mbps"
        return f"{self.bits_per_second:.0f}bps"


#: Zero bandwidth constant, used as the default guarantee (``r_min = 0``).
ZERO = Bandwidth(0.0)

#: Conventional line rate used when a policy gives no maximum (1 Gbps NICs in
#: the paper's testbed).
LINE_RATE = Bandwidth.gbps(1)


def parse_rate(text: Union[str, float, int, Bandwidth]) -> Bandwidth:
    """Module-level convenience wrapper around :meth:`Bandwidth.parse`."""
    return Bandwidth.parse(text)
