"""Merlin: a language for provisioning network resources — Python reproduction.

This package reproduces the Merlin system (Soulé et al., CoNEXT 2014): a
declarative policy language for software-defined networks, a compiler that
turns policies into forwarding paths, middlebox placements, and bandwidth
allocations, negotiators for dynamic adaptation and verified delegation, and
the substrates the system depends on (predicate logic, automata over network
locations, topology models, an LP/MIP solver layer, code generation for
switches/middleboxes/hosts, and a flow-level network simulator standing in
for the paper's hardware testbed).

Quickstart::

    from repro import compile_policy, fat_tree

    topology = fat_tree(4)
    result = compile_policy(policy_source, topology, placements={"dpi": [...]})
    print(result.instructions.counts())

The package root is the supported import surface for the whole lifecycle:
``MerlinCompiler`` + ``ProvisionOptions`` to compile, ``ProvisioningSession``
with ``PolicyDelta`` / ``TopologyDelta`` / ``ScenarioEvent`` to stream
changes at a live compile, and ``ControlPlane`` + ``AdmissionPolicy`` to run
the compiler as a multi-tenant provisioning service.  ``Telemetry`` (and
the :mod:`repro.telemetry` module) adds scoped tracing and metrics over
all of it — ``with Telemetry.recording().use(): ...``.  ``SolveFabric``
and ``ComponentSolutionCache`` (the :mod:`repro.fabric` layer) make
repeated provisioning fast: one persistent worker pool and one
content-addressed component-solution cache shared across compiles, sweeps,
and control-plane tenants via ``ProvisionOptions(fabric=...,
component_cache=..)``.
"""

from .core import (
    CompilationResult,
    MerlinCompiler,
    PathSelectionHeuristic,
    Policy,
    ProvisioningSession,
    ProvisionOptions,
    Statement,
    compile_policy,
    parse_policy,
)
from .fabric import ComponentSolutionCache, SolveFabric
from .incremental import PolicyDelta, RateUpdate, TopologyDelta, policy_delta
from .negotiator import Negotiator, delegate, verify_refinement
from .scenarios import ScenarioEvent
from .service import AdmissionPolicy, ControlPlane
from .telemetry import MetricsSnapshot, Telemetry
from .topology import (
    Topology,
    balanced_tree,
    dumbbell,
    fat_tree,
    figure2_example,
    linear,
    single_switch,
    stanford_campus,
    topology_zoo_like,
)
from .units import Bandwidth

__version__ = "1.0.0"

__all__ = [
    "CompilationResult",
    "MerlinCompiler",
    "PathSelectionHeuristic",
    "Policy",
    "ProvisioningSession",
    "ProvisionOptions",
    "Statement",
    "compile_policy",
    "parse_policy",
    "ComponentSolutionCache",
    "SolveFabric",
    "PolicyDelta",
    "RateUpdate",
    "TopologyDelta",
    "policy_delta",
    "ScenarioEvent",
    "AdmissionPolicy",
    "ControlPlane",
    "MetricsSnapshot",
    "Telemetry",
    "Negotiator",
    "delegate",
    "verify_refinement",
    "Topology",
    "balanced_tree",
    "dumbbell",
    "fat_tree",
    "figure2_example",
    "linear",
    "single_switch",
    "stanford_campus",
    "topology_zoo_like",
    "Bandwidth",
    "__version__",
]
