"""Linear constraints.

A constraint is stored in the normalised form ``expr (<= | >= | ==) 0``: the
right-hand side is folded into the expression's constant term when the
constraint is created by comparison operators on :class:`LinExpr`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .expr import LinExpr, Variable


class Sense(enum.Enum):
    """Direction of a linear constraint."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


@dataclass
class Constraint:
    """A linear constraint ``expression SENSE 0``."""

    expression: LinExpr
    sense: Sense
    name: Optional[str] = None

    def named(self, name: str) -> "Constraint":
        """Return the same constraint with a human-readable name attached."""
        self.name = name
        return self

    def satisfied(self, assignment: Mapping[Variable, float], tolerance: float = 1e-6) -> bool:
        """Whether the constraint holds under a variable assignment."""
        value = self.expression.value(assignment)
        if self.sense is Sense.LESS_EQUAL:
            return value <= tolerance
        if self.sense is Sense.GREATER_EQUAL:
            return value >= -tolerance
        return abs(value) <= tolerance

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """How far the constraint is from being satisfied (0 when satisfied)."""
        value = self.expression.value(assignment)
        if self.sense is Sense.LESS_EQUAL:
            return max(0.0, value)
        if self.sense is Sense.GREATER_EQUAL:
            return max(0.0, -value)
        return abs(value)

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.expression} {self.sense.value} 0"
