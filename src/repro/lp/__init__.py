"""Linear and mixed-integer programming substrate.

The Merlin compiler encodes bandwidth provisioning as a mixed-integer program
(Equations 1–5 in §3.2).  The paper solves it with the Gurobi Optimizer; this
package provides an equivalent, self-contained substitute:

* a small modelling layer (:class:`Variable`, :class:`LinExpr`,
  :class:`Constraint`, :class:`Model`) in the style of common MIP APIs,
* a SciPy/HiGHS backend (:mod:`repro.lp.scipy_backend`) that solves models
  exactly through ``scipy.optimize.milp`` / ``linprog``, and
* a pure-Python branch-and-bound solver (:mod:`repro.lp.branch_and_bound`)
  over LP relaxations, usable as an independent cross-check and as a fallback
  when SciPy's MILP interface is unavailable.
"""

from .constraint import Constraint, Sense
from .expr import LinExpr, Variable
from .model import Model, Objective
from .result import SolveResult, SolveStatus
from .scipy_backend import ScipySolver, solve
from .branch_and_bound import BranchAndBoundSolver

__all__ = [
    "Constraint",
    "Sense",
    "LinExpr",
    "Variable",
    "Model",
    "Objective",
    "SolveResult",
    "SolveStatus",
    "ScipySolver",
    "BranchAndBoundSolver",
    "solve",
]
