"""Linear and mixed-integer programming substrate.

The Merlin compiler encodes bandwidth provisioning as a mixed-integer program
(Equations 1–5 in §3.2).  The paper solves it with the Gurobi Optimizer; this
package provides an equivalent, self-contained substitute:

* a small modelling layer (:class:`Variable`, :class:`LinExpr`,
  :class:`Constraint`, :class:`Model`) in the style of common MIP APIs,
* a first-class backend layer (:mod:`repro.lp.backends`): the
  :class:`SolverBackend` capability protocol and a registry that makes
  backends addressable by string — ``"scipy"``, ``"bnb"``, ``"highs"``,
  ``"heuristic"``, and the deterministic ``"auto"`` portfolio driver,
* a SciPy/HiGHS backend (:mod:`repro.lp.scipy_backend`) that solves models
  exactly through ``scipy.optimize.milp`` / ``linprog``,
* a pure-Python branch-and-bound solver (:mod:`repro.lp.branch_and_bound`)
  over LP relaxations, usable as an independent cross-check and as a fallback
  when SciPy's MILP interface is unavailable,
* a direct HiGHS backend with real MIP-start plumbing
  (:mod:`repro.lp.highs_backend`, needs the optional ``highspy`` package),
* an anytime primal heuristic (:mod:`repro.lp.primal`) that finds feasible
  provisioning allocations in milliseconds.

See ``src/repro/lp/README.md`` for how to choose a backend.
"""

from .constraint import Constraint, Sense
from .expr import LinExpr, Variable
from .model import Model, Objective
from .result import SolveResult, SolveStatus
from .scipy_backend import ScipySolver, solve
from .branch_and_bound import BranchAndBoundSolver
from .highs_backend import HighsSolver, highs_available
from .primal import PrimalHeuristicSolver
from .backends import (
    AutoSolver,
    BackendCapabilities,
    SolverBackend,
    backend_name,
    capabilities,
    create_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)

__all__ = [
    "Constraint",
    "Sense",
    "LinExpr",
    "Variable",
    "Model",
    "Objective",
    "SolveResult",
    "SolveStatus",
    "ScipySolver",
    "BranchAndBoundSolver",
    "HighsSolver",
    "PrimalHeuristicSolver",
    "AutoSolver",
    "SolverBackend",
    "BackendCapabilities",
    "backend_name",
    "capabilities",
    "create_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "highs_available",
    "solve",
]
