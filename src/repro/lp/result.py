"""Solve results and status codes for the LP/MIP substrate."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .expr import Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve attempt.

    ``FEASIBLE`` means the solver found an integer-feasible incumbent but
    stopped (time or node limit) before proving it optimal; the incumbent is
    returned in ``values`` and the remaining best bound, when known, is
    surfaced in ``statistics["best_bound"]``.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        return self is SolveStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        """Whether a usable variable assignment accompanies this status."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """The outcome of solving a model.

    ``values`` maps every model variable to its value in the solution (empty
    for infeasible/unbounded outcomes).  ``objective`` is the objective value
    under that assignment.  ``statistics`` carries solver-specific metadata
    such as node counts or solve time, used by the scalability benchmarks.
    """

    status: SolveStatus
    values: Dict[Variable, float] = field(default_factory=dict)
    objective: Optional[float] = None
    statistics: Dict[str, float] = field(default_factory=dict)

    def value_of(self, variable: Variable, default: float = 0.0) -> float:
        """The solution value of a variable (``default`` when absent)."""
        return self.values.get(variable, default)

    def values_by_name(self) -> Dict[str, float]:
        """Solution values keyed by variable name (useful for reporting)."""
        return {variable.name: value for variable, value in self.values.items()}

    @property
    def is_optimal(self) -> bool:
        return self.status.is_optimal

    @property
    def has_solution(self) -> bool:
        """Whether the result carries a usable (possibly non-proven) solution."""
        return self.status.has_solution
