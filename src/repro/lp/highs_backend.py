"""A HiGHS MIP backend with real warm-start (MIP start) plumbing.

``scipy.optimize.milp`` drives the same HiGHS engine but exposes no start
API, so warm starts only ever helped the pure-Python branch-and-bound.
This backend talks to HiGHS directly through ``highspy`` and seeds validated
incumbents via ``Highs.setSolution`` — the `consumes_warm_starts` gate and
the scipy backend's drop-warning were pre-staged for exactly this.

``highspy`` is an *optional* dependency: when it is not importable,
:func:`highs_available` reports ``False``, constructing :class:`HighsSolver`
raises :class:`~repro.errors.SolverError` with a pointer at the ``"scipy"``
backend (same engine, no start plumbing), the registry still lists
``"highs"`` (so the error is discoverable, not a KeyError), and the ``auto``
portfolio simply skips it.  Tests for this module skip rather than fail
when the import is absent.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from ..errors import SolverError
from .branch_and_bound import BranchAndBoundSolver
from .model import Model, StandardForm
from .result import SolveResult, SolveStatus

try:  # pragma: no cover - exercised only where highspy is installed
    import highspy as _highspy
except ImportError:  # pragma: no cover - the container path
    _highspy = None


def highs_available() -> bool:
    """Whether the ``highspy`` bindings are importable in this environment."""
    return _highspy is not None


class HighsSolver:
    """Solve MIPs with the HiGHS C++ solver via ``highspy``.

    Unlike the scipy backend this one consumes warm starts: a candidate
    assignment validated by the shared
    :meth:`BranchAndBoundSolver._validate_start` check is handed to HiGHS
    as a MIP start, recorded in ``statistics["warm_start_used"]`` (or
    ``warm_start_rejected`` when the candidate fails validation).
    """

    name = "highs"
    consumes_warm_starts = True
    supports_time_limit = True
    supports_node_limit = True

    def __init__(
        self,
        time_limit_seconds: Optional[float] = None,
        node_limit: Optional[int] = None,
        mip_gap: float = 1e-6,
        sparse: bool = True,
    ) -> None:
        if _highspy is None:
            raise SolverError(
                "the 'highs' backend needs the highspy package, which is not "
                "installed; use the 'scipy' backend for the same HiGHS engine "
                "without warm-start plumbing"
            )
        self.time_limit_seconds = time_limit_seconds
        self.node_limit = node_limit
        self.mip_gap = mip_gap
        self.sparse = sparse

    def solve(
        self, model: Model, warm_start: Optional[Mapping[str, float]] = None
    ) -> SolveResult:
        form = model.to_standard_form(sparse=self.sparse)
        started = telemetry.clock()
        highs = _highspy.Highs()
        highs.setOptionValue("output_flag", False)
        highs.setOptionValue("mip_rel_gap", self.mip_gap)
        if self.time_limit_seconds is not None:
            highs.setOptionValue("time_limit", float(self.time_limit_seconds))
        if self.node_limit is not None:
            highs.setOptionValue("mip_max_nodes", int(self.node_limit))

        highs.passModel(self._build_lp(form))

        statistics: Dict[str, float] = {
            "num_variables": float(len(form.variables)),
            "num_integer_variables": float(int(form.integrality.sum())),
        }
        if warm_start is not None:
            lower = np.array([bound[0] for bound in form.bounds], dtype=float)
            upper = np.array([bound[1] for bound in form.bounds], dtype=float)
            point = BranchAndBoundSolver._validate_start(
                form, warm_start, lower, upper
            )
            if point is not None:
                solution = _highspy.HighsSolution()
                solution.col_value = [float(value) for value in point]
                highs.setSolution(solution)
                statistics["warm_start_used"] = 1.0
            else:
                statistics["warm_start_rejected"] = 1.0

        highs.run()
        statistics["solve_seconds"] = telemetry.clock() - started
        return self._wrap(highs, form, statistics)

    # -- internals ---------------------------------------------------------------

    def _build_lp(self, form: StandardForm):
        """Translate the standard form into a column-wise ``HighsLp``."""
        num_columns = len(form.variables)
        lp = _highspy.HighsLp()
        lp.num_col_ = num_columns
        lp.col_cost_ = list(map(float, form.c))
        lp.col_lower_ = [float(bound[0]) for bound in form.bounds]
        lp.col_upper_ = [float(bound[1]) for bound in form.bounds]
        lp.integrality_ = [
            _highspy.HighsVarType.kInteger if flag else _highspy.HighsVarType.kContinuous
            for flag in form.integrality
        ]

        blocks = []
        row_lower: list = []
        row_upper: list = []
        if form.b_ub.size:
            blocks.append(sp.csr_matrix(form.a_ub))
            row_lower.extend([-_highspy.kHighsInf] * form.b_ub.size)
            row_upper.extend(map(float, form.b_ub))
        if form.b_eq.size:
            blocks.append(sp.csr_matrix(form.a_eq))
            row_lower.extend(map(float, form.b_eq))
            row_upper.extend(map(float, form.b_eq))
        lp.num_row_ = len(row_lower)
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        if blocks:
            matrix = sp.vstack(blocks).tocsc()
            lp.a_matrix_.format_ = _highspy.MatrixFormat.kColwise
            lp.a_matrix_.start_ = list(map(int, matrix.indptr))
            lp.a_matrix_.index_ = list(map(int, matrix.indices))
            lp.a_matrix_.value_ = list(map(float, matrix.data))
        else:
            lp.a_matrix_.format_ = _highspy.MatrixFormat.kColwise
            lp.a_matrix_.start_ = [0] * (num_columns + 1)
            lp.a_matrix_.index_ = []
            lp.a_matrix_.value_ = []
        return lp

    def _wrap(
        self, highs, form: StandardForm, statistics: Dict[str, float]
    ) -> SolveResult:
        status = highs.getModelStatus()
        kind = _highspy.HighsModelStatus
        solution = highs.getSolution()
        has_point = bool(getattr(solution, "value_valid", True)) and len(
            getattr(solution, "col_value", ())
        ) == len(form.variables)

        self._record_mip_diagnostics(highs, form, statistics)

        if status == kind.kOptimal and has_point:
            solve_status = SolveStatus.OPTIMAL
        elif status == kind.kInfeasible:
            return SolveResult(status=SolveStatus.INFEASIBLE, statistics=statistics)
        elif status in (kind.kUnbounded, kind.kUnboundedOrInfeasible):
            return SolveResult(status=SolveStatus.UNBOUNDED, statistics=statistics)
        elif has_point:
            # A limit (time/node) interrupted the search with an incumbent.
            solve_status = SolveStatus.FEASIBLE
        else:
            return SolveResult(status=SolveStatus.ERROR, statistics=statistics)

        point = np.asarray(solution.col_value, dtype=float)
        values = {
            variable: float(value) for variable, value in zip(form.variables, point)
        }
        for position, flag in enumerate(form.integrality):
            if flag:
                variable = form.variables[position]
                values[variable] = float(round(values[variable]))
        objective = float(form.c @ point)
        if form.maximize:
            objective = -objective
        return SolveResult(
            status=solve_status,
            values=values,
            objective=objective,
            statistics=statistics,
        )

    @staticmethod
    def _record_mip_diagnostics(
        highs, form: StandardForm, statistics: Dict[str, float]
    ) -> None:
        """Copy node/bound/gap diagnostics off the solver, defensively."""
        info = highs.getInfo()
        nodes = getattr(info, "mip_node_count", None)
        if nodes is not None and nodes >= 0:
            statistics["nodes"] = float(nodes)
        bound = getattr(info, "mip_dual_bound", None)
        if bound is not None and np.isfinite(bound):
            statistics["best_bound"] = float(-bound if form.maximize else bound)
        gap = getattr(info, "mip_gap", None)
        if gap is not None and np.isfinite(gap):
            statistics["gap"] = float(gap)
