"""SciPy/HiGHS solver backend.

Pure LPs are dispatched to ``scipy.optimize.linprog`` and models with integer
variables to ``scipy.optimize.milp`` — both are thin wrappers over the HiGHS
solver, which (like the Gurobi solver used in the paper) is an exact
branch-and-cut MIP solver, so the path assignments it produces satisfy the
same constraint system the paper describes.

The backend exports models in sparse standard form by default
(``Model.to_standard_form(sparse=True)``): HiGHS consumes CSR directly, and
the dense export of a large fat-tree provisioning MIP is memory-bound long
before the solver is CPU-bound.  MIP diagnostics reported by HiGHS (dual
bound, node count, relative gap) are surfaced in ``SolveResult.statistics``
under the same keys the branch-and-bound backend uses, so callers can report
the MIP gap of ``FEASIBLE`` (time-limited) solves uniformly.

``scipy.optimize.milp`` has no MIP-start plumbing, so ``warm_start`` is
accepted for interface compatibility and recorded as ignored — with a
one-time :class:`RuntimeWarning` so callers learn their incumbent is not
consumed; use :class:`~repro.lp.branch_and_bound.BranchAndBoundSolver` when
warm starts must actually seed the search.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Optional

import numpy as np
from scipy import optimize, sparse

from .. import telemetry
from .model import Model, StandardForm
from .result import SolveResult, SolveStatus


class ScipySolver:
    """Solve :class:`~repro.lp.model.Model` instances with SciPy/HiGHS."""

    name = "scipy"

    # scipy.optimize.milp has no MIP-start plumbing: a warm_start passed to
    # solve() is recorded as ignored.  Callers that pay to *compute* starts
    # (the incremental engine's incumbent projection) check this flag first.
    consumes_warm_starts = False
    supports_time_limit = True
    supports_node_limit = False

    def __init__(
        self,
        time_limit_seconds: Optional[float] = None,
        mip_gap: float = 1e-6,
        sparse: bool = True,
    ) -> None:
        self.time_limit_seconds = time_limit_seconds
        self.mip_gap = mip_gap
        self.sparse = sparse
        # One warning per instance, not per solve (and not per process: a
        # module-global flag made test outcomes depend on execution order).
        # A controller streaming deltas through a warm-start-blind backend
        # hears about it once per solver it configures.
        self._warned_ignored_warm_start = False

    def solve(
        self, model: Model, warm_start: Optional[Mapping[str, float]] = None
    ) -> SolveResult:
        """Solve the model, returning a :class:`SolveResult`."""
        form = model.to_standard_form(sparse=self.sparse)
        started = telemetry.clock()
        if form.integrality.any():
            result = self._solve_milp(form)
        else:
            result = self._solve_lp(form)
        result.statistics["solve_seconds"] = telemetry.clock() - started
        result.statistics["num_variables"] = len(form.variables)
        result.statistics["num_integer_variables"] = int(form.integrality.sum())
        if warm_start is not None:
            # HiGHS-via-scipy cannot consume MIP starts; record the fact so
            # benchmarks comparing backends can see the start was dropped.
            result.statistics["warm_start_ignored"] = 1.0
            # The consumes_warm_starts gate keeps this quiet once highspy
            # start plumbing lands (a consuming subclass flips the flag).
            if (
                not self.consumes_warm_starts
                and not self._warned_ignored_warm_start
            ):
                self._warned_ignored_warm_start = True
                warnings.warn(
                    "the SciPy/HiGHS backend has no MIP-start plumbing: the "
                    "warm start was recorded but NOT consumed (statistics "
                    "key 'warm_start_ignored'); use "
                    "repro.lp.BranchAndBoundSolver to seed incumbents",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return result

    # -- internals -------------------------------------------------------------

    def _solve_lp(self, form: StandardForm) -> SolveResult:
        outcome = optimize.linprog(
            c=form.c,
            A_ub=form.a_ub if form.b_ub.size else None,
            b_ub=form.b_ub if form.b_ub.size else None,
            A_eq=form.a_eq if form.b_eq.size else None,
            b_eq=form.b_eq if form.b_eq.size else None,
            bounds=form.bounds,
            method="highs",
        )
        return self._wrap(form, outcome.status, outcome.x, outcome.fun)

    def _solve_milp(self, form: StandardForm) -> SolveResult:
        constraints = []
        if form.b_ub.size:
            a_ub = form.a_ub if form.is_sparse else sparse.csr_matrix(form.a_ub)
            constraints.append(
                optimize.LinearConstraint(
                    a_ub, -np.inf * np.ones(len(form.b_ub)), form.b_ub
                )
            )
        if form.b_eq.size:
            a_eq = form.a_eq if form.is_sparse else sparse.csr_matrix(form.a_eq)
            constraints.append(
                optimize.LinearConstraint(a_eq, form.b_eq, form.b_eq)
            )
        lower = np.array([bound[0] for bound in form.bounds], dtype=float)
        upper = np.array([bound[1] for bound in form.bounds], dtype=float)
        options = {"mip_rel_gap": self.mip_gap}
        if self.time_limit_seconds is not None:
            options["time_limit"] = self.time_limit_seconds
        outcome = optimize.milp(
            c=form.c,
            constraints=constraints,
            bounds=optimize.Bounds(lower, upper),
            integrality=form.integrality,
            options=options,
        )
        result = self._wrap(form, outcome.status, outcome.x, outcome.fun)
        self._record_mip_diagnostics(form, outcome, result)
        return result

    @staticmethod
    def _record_mip_diagnostics(
        form: StandardForm, outcome, result: SolveResult
    ) -> None:
        """Copy HiGHS branch-and-cut diagnostics into the result statistics.

        Keys mirror the pure-Python branch-and-bound backend: ``nodes``,
        ``best_bound`` (sign-adjusted for maximisation models), and ``gap``
        (absolute incumbent/bound distance).
        """
        nodes = getattr(outcome, "mip_node_count", None)
        if nodes is not None:
            result.statistics["nodes"] = float(nodes)
        bound = getattr(outcome, "mip_dual_bound", None)
        if bound is not None and result.objective is not None:
            best_bound = float(bound)
            if form.maximize:
                best_bound = -best_bound
            result.statistics["best_bound"] = best_bound
            result.statistics["gap"] = abs(result.objective - best_bound)

    @staticmethod
    def _wrap(form: StandardForm, status_code: int, solution, objective) -> SolveResult:
        # linprog and milp share status codes: 0 optimal, 1 iteration/time
        # limit, 2 infeasible, 3 unbounded.  A limit hit with an incumbent in
        # hand is a usable-but-unproven solution: FEASIBLE, not OPTIMAL.
        if status_code in (0, 1) and solution is not None:
            values = {
                variable: float(value) for variable, value in zip(form.variables, solution)
            }
            # Snap integer variables that HiGHS returns with tiny numerical noise.
            for variable in form.variables:
                if variable.is_integer:
                    values[variable] = float(round(values[variable]))
            objective_value = float(objective)
            if form.maximize:
                objective_value = -objective_value
            return SolveResult(
                status=SolveStatus.OPTIMAL if status_code == 0 else SolveStatus.FEASIBLE,
                values=values,
                objective=objective_value,
            )
        if status_code == 2:
            return SolveResult(status=SolveStatus.INFEASIBLE)
        if status_code == 3:
            return SolveResult(status=SolveStatus.UNBOUNDED)
        return SolveResult(status=SolveStatus.ERROR)


def solve(model: Model, **solver_options) -> SolveResult:
    """Convenience wrapper: solve ``model`` with a fresh :class:`ScipySolver`."""
    return ScipySolver(**solver_options).solve(model)
