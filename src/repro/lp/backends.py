"""The solver-backend layer: capability protocol, registry, and portfolio.

Every layer above the LP package (partitioned solving, warm-started
incremental re-solves, the compiler, the control-plane daemon) funnels into
"some object with a ``solve(model, warm_start=None)`` method".  This module
makes that contract explicit:

* :class:`SolverBackend` — the protocol every backend satisfies, including
  declared capability flags;
* :func:`capabilities` — the single place capability flags are read, with
  ONE documented default for unknown third-party backends (an undeclared
  capability is treated as absent — in particular, a backend must declare
  ``consumes_warm_starts = True`` to be handed warm starts);
* a **registry** mapping string names (``"scipy"``, ``"bnb"``, ``"highs"``,
  ``"heuristic"``, ``"auto"``) to backend factories, so every API that
  accepts a solver instance also accepts a name;
* :func:`resolve_backend` — the one resolution path (names, instances, and
  the historical ``None``-with-limits defaulting that used to live in
  ``ProvisionOptions.resolved_solver``);
* :class:`AutoSolver` — a deterministic portfolio driver racing the
  registered exact backends, seeded by the primal heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from .. import telemetry
from ..errors import SolverError
from .branch_and_bound import BranchAndBoundSolver
from .highs_backend import HighsSolver, highs_available
from .model import Model
from .primal import PrimalHeuristicSolver
from .result import SolveResult, SolveStatus
from .scipy_backend import ScipySolver


@runtime_checkable
class SolverBackend(Protocol):
    """What every solver backend provides.

    The attributes are *declared capabilities*: callers consult them (via
    :func:`capabilities`, never ``getattr`` probes) to decide whether to
    project warm starts, pass limits, or pickle the backend into a worker
    process.
    """

    #: Short registry-style name (``"scipy"``, ``"bnb"``, ...).
    name: str
    #: Whether ``solve`` accepts and uses a ``warm_start=`` mapping.
    consumes_warm_starts: bool
    #: Whether the backend honours a wall-clock time limit.
    supports_time_limit: bool
    #: Whether the backend honours a search-node limit.
    supports_node_limit: bool

    def solve(
        self, model: Model, warm_start: Optional[Mapping[str, float]] = None
    ) -> SolveResult:
        ...


@dataclass(frozen=True)
class BackendCapabilities:
    """A backend's declared capabilities, read once and passed around."""

    name: str
    consumes_warm_starts: bool
    supports_time_limit: bool
    supports_node_limit: bool


def capabilities(solver: Optional[object]) -> BackendCapabilities:
    """Read a backend's capability flags.

    This is the single source of truth for duck-typed backends: any flag a
    backend does not declare is reported ``False`` (the capability is
    absent).  Concretely, an unknown third-party backend is *not* handed
    warm starts unless it declares ``consumes_warm_starts = True`` — the
    one documented default that replaced the old divergent pair (an
    ``inspect.signature`` probe in ``Model.solve`` and a ``True``-default
    ``getattr`` in the incremental layer).

    ``None`` reports the default backend's capabilities (``Model.solve``
    falls back to :class:`ScipySolver` when given no solver).
    """
    if solver is None:
        solver = ScipySolver
    fallback = solver.__name__ if isinstance(solver, type) else type(solver).__name__
    name = str(getattr(solver, "name", "") or fallback)
    return BackendCapabilities(
        name=name,
        consumes_warm_starts=bool(getattr(solver, "consumes_warm_starts", False)),
        supports_time_limit=bool(getattr(solver, "supports_time_limit", False)),
        supports_node_limit=bool(getattr(solver, "supports_node_limit", False)),
    )


def backend_name(solver: Optional[object]) -> str:
    """The backend's declared name (class name for undeclared backends)."""
    return capabilities(solver).name


# -- registry -------------------------------------------------------------------

BackendFactory = Callable[..., SolverBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> None:
    """Register a backend factory under a string name.

    The factory is called as ``factory(time_limit_seconds=..., node_limit=...)``
    and may ignore limits it does not support.
    """
    if name in _REGISTRY and not replace:
        raise SolverError(
            f"a solver backend named {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[name] = factory


def registered_backends() -> Tuple[str, ...]:
    """The registered backend names, in registration order."""
    return tuple(_REGISTRY)


def create_backend(
    name: str,
    *,
    time_limit_seconds: Optional[float] = None,
    node_limit: Optional[int] = None,
) -> SolverBackend:
    """Instantiate a registered backend by name with the given limits."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown solver backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}"
        ) from None
    return factory(time_limit_seconds=time_limit_seconds, node_limit=node_limit)


def resolve_backend(
    spec: Union[None, str, SolverBackend] = None,
    *,
    time_limit_seconds: Optional[float] = None,
    node_limit: Optional[int] = None,
) -> SolverBackend:
    """Resolve a solver spec (``None`` / name / instance) to a backend.

    ``None`` keeps the historical default selection that used to live in
    ``ProvisionOptions.resolved_solver``: a node limit needs the
    branch-and-bound backend (scipy cannot bound its search), otherwise the
    scipy backend with any time limit applied.  Instances are returned by
    identity — their own configured limits win.
    """
    if spec is None:
        spec = "bnb" if node_limit is not None else "scipy"
    if isinstance(spec, str):
        return create_backend(
            spec, time_limit_seconds=time_limit_seconds, node_limit=node_limit
        )
    return spec


def _make_scipy(
    *, time_limit_seconds: Optional[float] = None, node_limit: Optional[int] = None
) -> ScipySolver:
    # scipy.optimize.milp has no node-limit knob; the limit is ignored here
    # (resolve_backend(None) routes node-limited solves to "bnb").
    return ScipySolver(time_limit_seconds=time_limit_seconds)


def _make_bnb(
    *, time_limit_seconds: Optional[float] = None, node_limit: Optional[int] = None
) -> BranchAndBoundSolver:
    if node_limit is not None:
        return BranchAndBoundSolver(
            time_limit_seconds=time_limit_seconds, max_nodes=node_limit
        )
    return BranchAndBoundSolver(time_limit_seconds=time_limit_seconds)


def _make_highs(
    *, time_limit_seconds: Optional[float] = None, node_limit: Optional[int] = None
) -> HighsSolver:
    return HighsSolver(time_limit_seconds=time_limit_seconds, node_limit=node_limit)


def _make_heuristic(
    *, time_limit_seconds: Optional[float] = None, node_limit: Optional[int] = None
) -> PrimalHeuristicSolver:
    return PrimalHeuristicSolver(time_limit_seconds=time_limit_seconds)


def _make_auto(
    *, time_limit_seconds: Optional[float] = None, node_limit: Optional[int] = None
) -> "AutoSolver":
    return AutoSolver(time_limit_seconds=time_limit_seconds, node_limit=node_limit)


# -- the deterministic portfolio driver -----------------------------------------

#: Candidate order: fixed priority, best solver first.  The priority both
#: orders the race and breaks within-resolution objective ties, so it is
#: part of the determinism contract.
_PORTFOLIO_PRIORITY: Tuple[str, ...] = ("highs", "scipy", "bnb")

_STATUS_RANK = {
    SolveStatus.OPTIMAL: 0,
    SolveStatus.FEASIBLE: 1,
}

_PROOF_RANK = {
    SolveStatus.INFEASIBLE: 0,
    SolveStatus.UNBOUNDED: 0,
    SolveStatus.ERROR: 1,
}


@dataclass
class _Attempt:
    """One candidate's outcome in the race."""

    priority: int
    backend: str
    result: SolveResult


class AutoSolver:
    """Race the registered exact backends; pick the winner deterministically.

    Per model the driver:

    1. consults :func:`capabilities` and the model size — models with more
       than :attr:`seed_threshold` integer variables first get a primal
       heuristic pass whose incumbent seeds every start-consuming
       candidate;
    2. orders candidates by the fixed portfolio priority, dropping backends
       whose declared capabilities cannot honour a configured node limit
       and the ``highs`` backend when ``highspy`` is absent;
    3. runs candidates in order under the configured limits,
       **short-circuiting** on a proven status (``OPTIMAL``,
       ``INFEASIBLE``, ``UNBOUNDED``) — racing on only continues while
       limits leave ``FEASIBLE``/``ERROR`` outcomes;
    4. picks the winner by status rank, then objective within the model's
       declared ``objective_resolution``, then fixed priority — **never**
       wall-clock — so ``auto`` results are byte-reproducible across runs
       and worker counts.

    The winner's statistics gain ``backend`` (its name), ``auto_candidates``
    (attempts made), and ``auto_seeded`` (1.0 when the heuristic seeded the
    race); ``solve_seconds`` is rewritten to the portfolio's total cost so
    CPU accounting upstream covers every candidate run.
    """

    name = "auto"
    consumes_warm_starts = True
    supports_time_limit = True
    supports_node_limit = True

    #: Models with at most this many integer variables skip the heuristic
    #: seeding pass — the exact solve is already effectively instant.
    seed_threshold = 24

    def __init__(
        self,
        time_limit_seconds: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> None:
        self.time_limit_seconds = time_limit_seconds
        self.node_limit = node_limit

    def _candidates(self) -> List[str]:
        names = []
        for name in _PORTFOLIO_PRIORITY:
            if name == "highs" and not highs_available():
                continue
            if name not in _REGISTRY:
                continue
            if self.node_limit is not None:
                probe = _REGISTRY[name](
                    time_limit_seconds=self.time_limit_seconds,
                    node_limit=self.node_limit,
                )
                if not capabilities(probe).supports_node_limit:
                    continue
            names.append(name)
        return names

    def solve(
        self, model: Model, warm_start: Optional[Mapping[str, float]] = None
    ) -> SolveResult:
        started = telemetry.clock()
        attempts: List[_Attempt] = []
        seeded = False

        # Heuristic pass: cheap incumbent for large models (or to repair a
        # caller-provided start into a full assignment).
        seed = dict(warm_start) if warm_start else None
        heuristic_result: Optional[SolveResult] = None
        if model.num_integer_variables() > self.seed_threshold:
            try:
                heuristic_result = PrimalHeuristicSolver(
                    time_limit_seconds=self.time_limit_seconds
                ).solve(model, warm_start=warm_start)
            except SolverError:
                heuristic_result = None
            if heuristic_result is not None and heuristic_result.status.has_solution:
                seed = heuristic_result.values_by_name()
                seeded = True

        for priority, name in enumerate(self._candidates()):
            backend = create_backend(
                name,
                time_limit_seconds=self.time_limit_seconds,
                node_limit=self.node_limit,
            )
            passed = seed if capabilities(backend).consumes_warm_starts else None
            with telemetry.span("portfolio_attempt", backend=name) as attempt_span:
                try:
                    result = backend.solve(model, warm_start=passed) if passed else (
                        backend.solve(model)
                    )
                except SolverError:
                    result = SolveResult(status=SolveStatus.ERROR)
                attempt_span.annotate(status=result.status.value)
            attempts.append(_Attempt(priority, name, result))
            if result.status in (
                SolveStatus.OPTIMAL,
                SolveStatus.INFEASIBLE,
                SolveStatus.UNBOUNDED,
            ):
                # Proven outcome: later candidates cannot beat it under the
                # deterministic pick rule, so stop racing.
                break
            if result.status is SolveStatus.FEASIBLE:
                # Keep racing with the best incumbent so far as the seed.
                seed = result.values_by_name()

        if heuristic_result is not None:
            # The heuristic competes too (lowest priority): if every exact
            # backend errored or was cut off below it, its incumbent wins.
            attempts.append(
                _Attempt(len(_PORTFOLIO_PRIORITY), "heuristic", heuristic_result)
            )
        if not attempts:
            raise SolverError("the auto portfolio has no usable backends")

        winner = self._pick(model, attempts)
        winner.result.statistics["backend"] = winner.backend
        winner.result.statistics["auto_candidates"] = float(len(attempts))
        if seeded:
            winner.result.statistics["auto_seeded"] = 1.0
        winner.result.statistics["solve_seconds"] = telemetry.clock() - started
        return winner.result

    @staticmethod
    def _pick(model: Model, attempts: List[_Attempt]) -> _Attempt:
        """The deterministic winner: status > objective-within-resolution > priority."""
        solved = [a for a in attempts if a.result.status.has_solution]
        if not solved:
            # No solution anywhere: prefer a proven claim (INFEASIBLE /
            # UNBOUNDED) over an ERROR, then priority.
            return min(
                attempts,
                key=lambda a: (_PROOF_RANK.get(a.result.status, 2), a.priority),
            )
        best_rank = min(_STATUS_RANK[a.result.status] for a in solved)
        ranked = [a for a in solved if _STATUS_RANK[a.result.status] == best_rank]
        sign = -1.0 if model.direction.name == "MAXIMIZE" else 1.0
        objectives = [
            sign * (a.result.objective if a.result.objective is not None else 0.0)
            for a in ranked
        ]
        resolution = getattr(model, "objective_resolution", None)
        tolerance = resolution if resolution is not None and resolution > 0 else 1e-9
        best_objective = min(objectives)
        finalists = [
            attempt
            for attempt, objective in zip(ranked, objectives)
            if objective <= best_objective + tolerance
        ]
        return min(finalists, key=lambda a: a.priority)


register_backend("scipy", _make_scipy)
register_backend("bnb", _make_bnb)
register_backend("highs", _make_highs)
register_backend("heuristic", _make_heuristic)
register_backend("auto", _make_auto)
