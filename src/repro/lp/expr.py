"""Decision variables and linear expressions.

The modelling layer mimics the small core of APIs like Gurobi's or PuLP's:
variables support arithmetic that produces :class:`LinExpr` objects, and
comparisons against numbers or expressions produce constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, float]


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    ``is_integer`` marks integrality; a binary variable is an integer
    variable with bounds ``[0, 1]`` (the MIP's edge-selection variables
    ``x_e`` are binary).  Variables are identified by name; the
    :class:`~repro.lp.model.Model` enforces uniqueness.
    """

    name: str
    lower: float = 0.0
    upper: float = math.inf
    is_integer: bool = False

    @property
    def is_binary(self) -> bool:
        return self.is_integer and self.lower == 0.0 and self.upper == 1.0

    # -- arithmetic producing linear expressions ----------------------------

    def to_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other) -> "LinExpr":
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self.to_expr()) + other

    def __mul__(self, factor: Number) -> "LinExpr":
        return self.to_expr() * factor

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    # -- comparisons producing constraints -----------------------------------

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __str__(self) -> str:
        return self.name


class LinExpr:
    """An affine expression: a weighted sum of variables plus a constant."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self,
        coefficients: Optional[Mapping[Variable, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.coefficients: Dict[Variable, float] = dict(coefficients or {})
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def sum_of(terms: Iterable[Union["LinExpr", Variable, Number]]) -> "LinExpr":
        """Sum an iterable of variables, expressions, and numbers."""
        total = LinExpr()
        for term in terms:
            total.add(term)
        return total

    @staticmethod
    def weighted_sum(
        pairs: Iterable[Tuple[Variable, Number]], constant: float = 0.0
    ) -> "LinExpr":
        """Build ``sum(coefficient * variable)`` in one pass.

        The loop-growing equivalent ``expr = expr + var * coeff`` copies the
        whole coefficient dict on every term (quadratic in the number of
        terms); this builds the dict once.
        """
        total = LinExpr(constant=constant)
        coefficients = total.coefficients
        for variable, coefficient in pairs:
            coefficients[variable] = coefficients.get(variable, 0.0) + coefficient
        return total

    def add_term(self, variable: Variable, coefficient: Number = 1.0) -> "LinExpr":
        """Add ``coefficient * variable`` in place and return ``self``.

        This is the accumulation primitive for expressions grown inside
        loops (flow-conservation sums, per-link reservation sums, objective
        assembly): unlike ``+`` it never copies the coefficient dict.
        """
        self.coefficients[variable] = (
            self.coefficients.get(variable, 0.0) + coefficient
        )
        return self

    def add_constant(self, value: Number) -> "LinExpr":
        """Add a constant in place and return ``self``."""
        self.constant += float(value)
        return self

    def set_term(self, variable: Variable, coefficient: Number) -> "LinExpr":
        """Set the coefficient of ``variable`` in place and return ``self``.

        A zero coefficient deletes the term entirely (rather than storing an
        explicit zero), so expressions spliced by the incremental
        provisioning engine stay as sparse as freshly built ones.
        """
        if coefficient == 0.0:
            self.coefficients.pop(variable, None)
        else:
            self.coefficients[variable] = float(coefficient)
        return self

    def remove_term(self, variable: Variable) -> "LinExpr":
        """Delete ``variable``'s term in place (no-op when absent); return ``self``.

        This is the splice-out primitive of incremental model updates: when a
        statement is retracted, its edge variables are removed from every
        reservation row they appear in before the variables themselves are
        dropped from the model.
        """
        self.coefficients.pop(variable, None)
        return self

    def has_term(self, variable: Variable) -> bool:
        """Whether the expression carries a (non-zero) term for ``variable``."""
        return variable in self.coefficients

    def add(self, other: Union["LinExpr", Variable, Number]) -> "LinExpr":
        """Add another expression/variable/number in place and return ``self``."""
        if isinstance(other, Variable):
            return self.add_term(other, 1.0)
        if isinstance(other, (int, float)):
            return self.add_constant(other)
        rhs = self._coerce(other)
        for variable, coefficient in rhs.coefficients.items():
            self.coefficients[variable] = (
                self.coefficients.get(variable, 0.0) + coefficient
            )
        self.constant += rhs.constant
        return self

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coefficients), self.constant)

    # -- arithmetic -----------------------------------------------------------

    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other.to_expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, float(other))
        raise TypeError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other) -> "LinExpr":
        rhs = self._coerce(other)
        result = self.copy()
        for variable, coefficient in rhs.coefficients.items():
            result.coefficients[variable] = result.coefficients.get(variable, 0.0) + coefficient
        result.constant += rhs.constant
        return result

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        return LinExpr(
            {variable: coefficient * factor for variable, coefficient in self.coefficients.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons producing constraints ------------------------------------

    def __le__(self, other):
        from .constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.LESS_EQUAL)

    def __ge__(self, other):
        from .constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.GREATER_EQUAL)

    def equals(self, other) -> "Constraint":
        """Build an equality constraint (``==`` is kept for object identity)."""
        from .constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.EQUAL)

    # -- evaluation -----------------------------------------------------------

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(
            coefficient * assignment.get(variable, 0.0)
            for variable, coefficient in self.coefficients.items()
        )

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self.coefficients)

    def __str__(self) -> str:
        parts = [
            f"{coefficient:+g}*{variable.name}"
            for variable, coefficient in sorted(
                self.coefficients.items(), key=lambda item: item[0].name
            )
            if coefficient != 0.0
        ]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
