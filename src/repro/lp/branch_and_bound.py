"""A pure-Python branch-and-bound MIP solver.

This backend solves mixed-integer programs by branching on fractional integer
variables and bounding with LP relaxations solved by ``scipy.optimize.linprog``
(HiGHS).  It exists for two reasons:

* it is an *independent* implementation against which the SciPy/HiGHS MILP
  backend is cross-checked in the test suite, and
* it demonstrates that the Merlin formulation does not depend on a
  commercial solver — the ablation benchmark compares the two backends on
  the same provisioning problems.

The solver uses best-first search on the LP relaxation bound with
most-fractional branching, which is entirely adequate for the path-selection
MIPs Merlin generates (binary edge variables with network-flow structure).
Relaxations consume the model's *sparse* standard form end-to-end
(``Model.to_standard_form(sparse=True)`` — HiGHS accepts CSR directly), so
the solver's memory stays proportional to the constraint-matrix non-zeros
rather than rows × columns; pass ``sparse=False`` to restore the dense
export.

Pruning respects the model's declared ``objective_resolution`` (the
tiebreaker epsilon of Merlin's min-max objectives): the effective absolute
gap is scaled below it, so a warm-started solve seeded with an
equal-but-for-tiebreaker incumbent still discovers the tie a cold solve
would pick — warm and cold solves select identical optima regardless of
component size.

Incumbent bookkeeping follows standard branch-and-bound semantics: when the
search is interrupted by the time limit or the node limit while a feasible
incumbent exists, the incumbent is returned with
:attr:`~repro.lp.result.SolveStatus.FEASIBLE` (not ``OPTIMAL``), and the
smallest open relaxation bound is surfaced in ``statistics["best_bound"]``
(with ``statistics["gap"]`` the absolute incumbent/bound gap).  ``OPTIMAL``
is only reported once every open node is exhausted or dominated.

The solver accepts a MIP start: ``solve(model, warm_start={name: value})``
seeds the incumbent with a known feasible assignment (after validating its
bounds, integrality, and constraints), so re-solves of a model that changed
only slightly — the adaptation workload of Figure 10 — prune against the
previous solution from the first node instead of rediscovering it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import optimize

from .. import telemetry
from ..errors import SolverError
from .model import Model, StandardForm
from .result import SolveResult, SolveStatus

_INTEGRALITY_TOLERANCE = 1e-6
_FEASIBILITY_TOLERANCE = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node, ordered by its LP relaxation bound."""

    bound: float
    sequence: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


class BranchAndBoundSolver:
    """Best-first branch-and-bound over HiGHS LP relaxations."""

    name = "bnb"
    consumes_warm_starts = True
    supports_time_limit = True
    supports_node_limit = True

    def __init__(
        self,
        time_limit_seconds: Optional[float] = None,
        max_nodes: int = 200_000,
        absolute_gap: float = 1e-6,
        sparse: bool = True,
    ) -> None:
        self.time_limit_seconds = time_limit_seconds
        self.max_nodes = max_nodes
        self.absolute_gap = absolute_gap
        self.sparse = sparse

    def _effective_gap(self, model: Model) -> float:
        """The pruning gap, scaled below the model's objective resolution.

        With the default ``absolute_gap`` (1e-6) alone, a seeded incumbent
        prunes any node within 1e-6 of it — including the strictly better
        tie a cold solve would find whenever the model's tiebreaker epsilon
        falls below the gap (components beyond ~1000 logical edges).
        Halving the declared resolution keeps the gap strictly between
        numerical noise and the smallest genuine objective difference, so
        warm and cold solves pick identical optima.
        """
        resolution = getattr(model, "objective_resolution", None)
        if resolution is not None and 0.0 < resolution < 2.0 * self.absolute_gap:
            return resolution / 2.0
        return self.absolute_gap

    def solve(
        self, model: Model, warm_start: Optional[Mapping[str, float]] = None
    ) -> SolveResult:
        """Solve the model; falls back to a single LP solve when it has no integers.

        ``warm_start`` maps variable names to a candidate assignment
        (missing variables default to their lower bound).  A start that
        passes the bounds/integrality/constraint check becomes the initial
        incumbent; an invalid start is dropped and recorded in
        ``statistics["warm_start_rejected"]``.
        """
        form = model.to_standard_form(sparse=self.sparse)
        absolute_gap = self._effective_gap(model)
        # Bound once: the node loop below reads the clock per node, and the
        # contextvar lookup inside telemetry.clock() would be per-iteration
        # overhead for no benefit.
        clock = telemetry.active().clock
        started = clock()
        integer_indices = [
            position for position, flag in enumerate(form.integrality) if flag
        ]
        lower = np.array([bound[0] for bound in form.bounds], dtype=float)
        upper = np.array([bound[1] for bound in form.bounds], dtype=float)

        incumbent: Optional[np.ndarray] = None
        incumbent_objective = math.inf
        warm_start_used = 0.0
        warm_start_rejected = 0.0
        if warm_start is not None:
            seeded = self._validate_start(form, warm_start, lower, upper)
            if seeded is not None:
                incumbent = seeded
                incumbent_objective = float(form.c @ seeded)
                warm_start_used = 1.0
            else:
                warm_start_rejected = 1.0
        explored = 0
        counter = itertools.count()

        root = self._solve_relaxation(form, lower, upper)
        if root is None:
            return SolveResult(
                status=SolveStatus.INFEASIBLE,
                statistics={"nodes": 1, "solve_seconds": clock() - started},
            )
        heap: List[_Node] = [_Node(root[1], next(counter), lower, upper)]
        interrupted = False

        while heap:
            explored += 1
            if explored > self.max_nodes:
                if incumbent is None:
                    raise SolverError(
                        f"branch-and-bound exceeded the node limit ({self.max_nodes}) "
                        "without finding a feasible solution"
                    )
                interrupted = True
                break
            if (
                self.time_limit_seconds is not None
                and clock() - started > self.time_limit_seconds
            ):
                interrupted = True
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_objective - absolute_gap:
                continue
            relaxation = self._solve_relaxation(form, node.lower, node.upper)
            if relaxation is None:
                continue
            solution, objective = relaxation
            if objective >= incumbent_objective - absolute_gap:
                continue
            branch_index = self._most_fractional(solution, integer_indices)
            if branch_index is None:
                # Integer-feasible: new incumbent.
                incumbent = solution
                incumbent_objective = objective
                continue
            value = solution[branch_index]
            floor_value = math.floor(value)
            # Down branch: x <= floor(value).
            down_upper = node.upper.copy()
            down_upper[branch_index] = floor_value
            if down_upper[branch_index] >= node.lower[branch_index] - 1e-12:
                heapq.heappush(
                    heap, _Node(objective, next(counter), node.lower.copy(), down_upper)
                )
            # Up branch: x >= ceil(value).
            up_lower = node.lower.copy()
            up_lower[branch_index] = floor_value + 1
            if up_lower[branch_index] <= node.upper[branch_index] + 1e-12:
                heapq.heappush(
                    heap, _Node(objective, next(counter), up_lower, node.upper.copy())
                )

        elapsed = clock() - started
        start_stats = {}
        if warm_start_used:
            start_stats["warm_start_used"] = warm_start_used
        if warm_start_rejected:
            start_stats["warm_start_rejected"] = warm_start_rejected
        if incumbent is None:
            # The search ran to exhaustion without an integer-feasible point.
            # (An interrupted search without an incumbent cannot conclude
            # infeasibility, but the time-limit break above only triggers
            # after at least the root relaxation succeeded; report the honest
            # outcome either way.)
            return SolveResult(
                status=SolveStatus.ERROR if interrupted else SolveStatus.INFEASIBLE,
                statistics={"nodes": explored, "solve_seconds": elapsed, **start_stats},
            )
        values = {
            variable: float(value) for variable, value in zip(form.variables, incumbent)
        }
        for position in integer_indices:
            variable = form.variables[position]
            values[variable] = float(round(values[variable]))
        objective_value = incumbent_objective
        # The best bound is the smallest relaxation bound still open; when the
        # heap is empty (or every open node is dominated by the incumbent) the
        # incumbent is proven optimal.
        best_bound = min((node.bound for node in heap), default=incumbent_objective)
        best_bound = min(best_bound, incumbent_objective)
        proven = (
            not interrupted
            or not heap
            or best_bound >= incumbent_objective - absolute_gap
        )
        if form.maximize:
            objective_value = -objective_value
            best_bound = -best_bound
        return SolveResult(
            status=SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE,
            values=values,
            objective=objective_value,
            statistics={
                "nodes": explored,
                "solve_seconds": elapsed,
                "best_bound": best_bound,
                "gap": abs(objective_value - best_bound),
                **start_stats,
            },
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _validate_start(
        form: StandardForm,
        warm_start: Mapping[str, float],
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Turn a named warm start into a feasible point, or ``None``.

        Missing variables default to their lower bound; the candidate must
        respect bounds, integrality, and every constraint row to become the
        initial incumbent (an optimistic but infeasible start would silently
        prune the true optimum otherwise).
        """
        point = lower.copy()
        for position, variable in enumerate(form.variables):
            value = warm_start.get(variable.name)
            if value is not None:
                point[position] = float(value)
        if not np.all(np.isfinite(point)):
            # A variable with an infinite lower bound missing from the start
            # (or an explicit non-finite value) would poison the incumbent
            # objective and disable pruning.
            return None
        if np.any(point < lower - _FEASIBILITY_TOLERANCE) or np.any(
            point > upper + _FEASIBILITY_TOLERANCE
        ):
            return None
        integer_mask = form.integrality.astype(bool)
        if integer_mask.any():
            rounded = np.round(point[integer_mask])
            if np.max(np.abs(point[integer_mask] - rounded), initial=0.0) > _INTEGRALITY_TOLERANCE:
                return None
            point[integer_mask] = rounded
        if form.b_ub.size and np.any(
            form.a_ub @ point > form.b_ub + _FEASIBILITY_TOLERANCE
        ):
            return None
        if form.b_eq.size and np.any(
            np.abs(form.a_eq @ point - form.b_eq) > _FEASIBILITY_TOLERANCE
        ):
            return None
        return point

    @staticmethod
    def _solve_relaxation(
        form: StandardForm, lower: np.ndarray, upper: np.ndarray
    ) -> Optional[Tuple[np.ndarray, float]]:
        """Solve the LP relaxation with the given bounds (``None`` if infeasible)."""
        outcome = optimize.linprog(
            c=form.c,
            A_ub=form.a_ub if form.b_ub.size else None,
            b_ub=form.b_ub if form.b_ub.size else None,
            A_eq=form.a_eq if form.b_eq.size else None,
            b_eq=form.b_eq if form.b_eq.size else None,
            bounds=list(zip(lower, upper)),
            method="highs",
        )
        if outcome.status == 0:
            return outcome.x, float(outcome.fun)
        if outcome.status in (2, 3):
            return None
        raise SolverError(f"LP relaxation failed with status {outcome.status}")

    @staticmethod
    def _most_fractional(
        solution: np.ndarray, integer_indices: List[int]
    ) -> Optional[int]:
        """The integer variable farthest from integrality (``None`` if all integral)."""
        best_index: Optional[int] = None
        best_distance = _INTEGRALITY_TOLERANCE
        for position in integer_indices:
            value = solution[position]
            distance = abs(value - round(value))
            if distance > best_distance:
                best_distance = distance
                best_index = position
        return best_index
