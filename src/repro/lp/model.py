"""The optimisation model: variables, constraints, and an objective.

A :class:`Model` collects decision variables and linear constraints, exposes
them in the dense standard form consumed by SciPy, and delegates solving to a
backend (:class:`~repro.lp.scipy_backend.ScipySolver` by default).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SolverError
from .constraint import Constraint, Sense
from .expr import LinExpr, Variable


class Objective(enum.Enum):
    """Optimisation direction."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass
class StandardForm:
    """Standard-form data ready for SciPy.

    Minimise ``c @ x`` subject to ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``,
    and per-variable bounds; ``integrality`` is 1 for integer variables.
    The objective sign is already flipped for maximisation models.

    ``a_ub`` / ``a_eq`` are dense ``np.ndarray`` matrices by default, or
    ``scipy.sparse.csr_matrix`` when the form was exported with
    ``sparse=True`` (``is_sparse`` records which).  HiGHS accepts either
    layout; the sparse one keeps memory linear in the number of non-zeros,
    which is what lets large fat-tree provisioning models fit in RAM.
    """

    variables: List[Variable]
    c: np.ndarray
    a_ub: "np.ndarray"
    b_ub: np.ndarray
    a_eq: "np.ndarray"
    b_eq: np.ndarray
    bounds: List[Tuple[float, float]]
    integrality: np.ndarray
    maximize: bool
    is_sparse: bool = False


class Model:
    """A linear / mixed-integer optimisation model.

    ``objective_resolution`` optionally declares the smallest objective
    difference that distinguishes two genuinely different solutions (for
    Merlin's min-max objectives, the per-edge tiebreaker epsilon).  Gap-based
    solvers scale their pruning tolerance below it so a seeded incumbent can
    never shadow a strictly better tie — see
    :class:`~repro.lp.branch_and_bound.BranchAndBoundSolver`.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._direction: Objective = Objective.MINIMIZE
        self.objective_resolution: Optional[float] = None

    # -- variables -----------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
        is_integer: bool = False,
    ) -> Variable:
        """Create and register a decision variable with a unique name."""
        if name in self._variables:
            raise SolverError(f"duplicate variable name {name!r}")
        variable = Variable(name=name, lower=lower, upper=upper, is_integer=is_integer)
        self._variables[name] = variable
        return variable

    def add_binary(self, name: str) -> Variable:
        """Create a {0, 1} decision variable."""
        return self.add_variable(name, lower=0.0, upper=1.0, is_integer=True)

    def add_continuous(self, name: str, lower: float = 0.0, upper: float = math.inf) -> Variable:
        """Create a continuous, bounded decision variable."""
        return self.add_variable(name, lower=lower, upper=upper, is_integer=False)

    def variables(self) -> List[Variable]:
        """All registered variables in insertion order."""
        return list(self._variables.values())

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._variables[name]
        except KeyError:
            raise SolverError(f"unknown variable {name!r}") from None

    def remove_variable(self, variable: Union[Variable, str]) -> None:
        """Unregister a variable (by object or name), freeing its name.

        The caller is responsible for splicing the variable out of every
        constraint and the objective first (see
        :meth:`~repro.lp.expr.LinExpr.remove_term`); a dangling reference is
        caught by :meth:`to_standard_form`, which refuses to export
        constraints over unknown variables.
        """
        name = variable.name if isinstance(variable, Variable) else variable
        if name not in self._variables:
            raise SolverError(f"unknown variable {name!r}")
        del self._variables[name]

    def remove_variables(self, variables: Iterable[Union[Variable, str]]) -> None:
        """Unregister several variables at once."""
        for variable in variables:
            self.remove_variable(variable)

    def num_variables(self) -> int:
        return len(self._variables)

    def num_integer_variables(self) -> int:
        return sum(1 for variable in self._variables.values() if variable.is_integer)

    # -- constraints ----------------------------------------------------------

    def add_constraint(self, constraint: Constraint, name: Optional[str] = None) -> Constraint:
        """Register a constraint built with the expression comparison operators."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects a Constraint; use <=, >= or .equals() on expressions"
            )
        if name is not None:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def remove_constraint(self, constraint: Constraint) -> None:
        """Unregister one constraint (matched by object identity)."""
        for position, existing in enumerate(self._constraints):
            if existing is constraint:
                del self._constraints[position]
                return
        raise SolverError(
            f"constraint {constraint.name or str(constraint)!r} is not in the model"
        )

    def remove_constraints(self, constraints: Iterable[Constraint]) -> None:
        """Unregister several constraints in one pass over the row list.

        Removal is by object identity, so callers that kept the handles
        returned by :meth:`add_constraint` can retract a group of rows in
        O(total rows) rather than O(rows removed x total rows).  Note the
        provisioning pipeline itself treats models as immutable once built
        (the incremental engine's checkpoint/restore relies on that); this
        editing API serves ad-hoc model surgery by library users.
        """
        doomed = {id(constraint) for constraint in constraints}
        if not doomed:
            return
        kept = [c for c in self._constraints if id(c) not in doomed]
        if len(kept) != len(self._constraints) - len(doomed):
            raise SolverError("some constraints to remove are not in the model")
        self._constraints = kept

    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- objective ------------------------------------------------------------

    def set_objective(self, expression: Union[LinExpr, Variable, float], direction: Objective) -> None:
        """Set the objective expression and optimisation direction."""
        if isinstance(expression, Variable):
            expression = expression.to_expr()
        elif isinstance(expression, (int, float)):
            expression = LinExpr({}, float(expression))
        self._objective = expression
        self._direction = direction

    def minimize(self, expression: Union[LinExpr, Variable, float]) -> None:
        self.set_objective(expression, Objective.MINIMIZE)

    def maximize(self, expression: Union[LinExpr, Variable, float]) -> None:
        self.set_objective(expression, Objective.MAXIMIZE)

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def direction(self) -> Objective:
        return self._direction

    # -- standard form ----------------------------------------------------------

    def to_standard_form(self, sparse: bool = False) -> StandardForm:
        """Export the model as matrices for SciPy's solvers.

        Matrix assembly is vectorized: constraints are flattened into
        coordinate triplets ``(row, column, value)`` in one pass.  With
        ``sparse=False`` the triplets are scattered into dense matrices with
        ``np.add.at`` (which accumulates duplicate coordinates exactly like
        the per-row ``+=`` of a scalar build).  With ``sparse=True`` the same
        triplets become ``scipy.sparse`` COO matrices (which also sum
        duplicates) converted to CSR, so memory stays proportional to the
        number of non-zeros instead of rows x columns — the dense export of
        a fat-tree provisioning MIP grows quadratically and becomes the
        memory bound long before the solver does.
        """
        variables = self.variables()
        index = {variable: position for position, variable in enumerate(variables)}
        num_vars = len(variables)

        c = np.zeros(num_vars)
        for variable, coefficient in self._objective.coefficients.items():
            position = index.get(variable)
            if position is None:
                raise SolverError(
                    f"objective references variable {variable.name!r} not in model"
                )
            c[position] += coefficient
        maximize = self._direction is Objective.MAXIMIZE
        if maximize:
            c = -c

        ub_coords: Tuple[List[int], List[int], List[float]] = ([], [], [])
        ub_rhs: List[float] = []
        eq_coords: Tuple[List[int], List[int], List[float]] = ([], [], [])
        eq_rhs: List[float] = []
        for constraint in self._constraints:
            sense = constraint.sense
            if sense is Sense.EQUAL:
                rows, cols, vals = eq_coords
                row_number = len(eq_rhs)
                sign = 1.0
            else:
                rows, cols, vals = ub_coords
                row_number = len(ub_rhs)
                # >= rows are negated into <= form.
                sign = 1.0 if sense is Sense.LESS_EQUAL else -1.0
            for variable, coefficient in constraint.expression.coefficients.items():
                position = index.get(variable)
                if position is None:
                    raise SolverError(
                        f"constraint references variable {variable.name!r} not in model"
                    )
                rows.append(row_number)
                cols.append(position)
                vals.append(sign * coefficient)
            rhs = -constraint.expression.constant
            if sense is Sense.EQUAL:
                eq_rhs.append(rhs)
            else:
                ub_rhs.append(sign * rhs)

        if sparse:
            from scipy import sparse as sp

            a_ub = sp.coo_matrix(
                (ub_coords[2], (ub_coords[0], ub_coords[1])),
                shape=(len(ub_rhs), num_vars),
            ).tocsr()
            a_eq = sp.coo_matrix(
                (eq_coords[2], (eq_coords[0], eq_coords[1])),
                shape=(len(eq_rhs), num_vars),
            ).tocsr()
        else:
            a_ub = np.zeros((len(ub_rhs), num_vars))
            if ub_coords[0]:
                np.add.at(a_ub, (ub_coords[0], ub_coords[1]), ub_coords[2])
            a_eq = np.zeros((len(eq_rhs), num_vars))
            if eq_coords[0]:
                np.add.at(a_eq, (eq_coords[0], eq_coords[1]), eq_coords[2])
        bounds = [(variable.lower, variable.upper) for variable in variables]
        integrality = np.array(
            [1 if variable.is_integer else 0 for variable in variables], dtype=int
        )
        return StandardForm(
            variables=variables,
            c=c,
            a_ub=a_ub,
            b_ub=np.array(ub_rhs, dtype=float),
            a_eq=a_eq,
            b_eq=np.array(eq_rhs, dtype=float),
            bounds=bounds,
            integrality=integrality,
            maximize=maximize,
            is_sparse=sparse,
        )

    # -- solving -----------------------------------------------------------------

    def solve(self, solver=None, warm_start: Optional[Mapping[str, float]] = None):
        """Solve the model with the given backend (SciPy/HiGHS by default).

        ``warm_start`` optionally maps variable names to a known (partial)
        feasible assignment — a MIP start.  It is passed through only to
        backends that declare ``consumes_warm_starts = True`` (see
        :func:`repro.lp.backends.capabilities`); backends without the flag
        — including third-party ones written against the plain
        ``solve(model)`` protocol — are called without it.
        """
        from .backends import capabilities

        if solver is None:
            from .scipy_backend import ScipySolver

            solver = ScipySolver()
        if warm_start is None or not capabilities(solver).consumes_warm_starts:
            return solver.solve(self)
        return solver.solve(self, warm_start=warm_start)

    def objective_value(self, assignment) -> float:
        """Evaluate the objective under an assignment (model direction applied)."""
        return self._objective.value(assignment)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, variables={self.num_variables()}, "
            f"integer={self.num_integer_variables()}, constraints={self.num_constraints()})"
        )
