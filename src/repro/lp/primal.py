"""An anytime primal heuristic for the provisioning MIP.

The exact backends prove optimality; this backend trades the proof for
latency.  It decodes the *structure* of a provisioning model — one binary
variable per logical edge (``x__{statement}__{index}``), per-statement flow
conservation rows (``flow__*``, Equation 1), and per-link reservation rows
(``reserve__*``, Equation 2) — and then runs an iterated two-phase local
search over per-statement path choices:

1. **greedy construct** — statements in decreasing-guarantee order each take
   the path minimising (bottleneck utilisation after adding their load,
   hop count), found by a lexicographic Dijkstra over the statement's
   logical topology on residual capacity;
2. **improve / perturb** — while the budget lasts, reroute users of the
   most-loaded link when that strictly lowers the global bottleneck; when no
   single reroute helps, perturb (reroute the heaviest bottleneck user with
   the bottleneck link forbidden), repair with further single reroutes, and
   keep the perturbed solution only if it is strictly better.

The search is entirely deterministic — no randomness, all ties broken by
construction order or identifier — so repeated solves of the same model
yield byte-identical allocations.  On success the result is
:attr:`~repro.lp.result.SolveStatus.FEASIBLE` (an incumbent without an
optimality proof, exactly like a time-limited exact solve); when no
capacity-respecting assignment is found the result is ``ERROR`` (a heuristic
cannot prove infeasibility).  Models that do not follow the provisioning
naming/shape conventions raise :class:`~repro.errors.SolverError` — this
backend is a specialist, not a general MIP solver.

Used standalone (``ProvisionOptions(solver="heuristic")``) it provisions a
fat-tree component in milliseconds; used by the ``auto`` portfolio driver
(:mod:`repro.lp.backends`) its incumbent seeds the exact backends' search.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import SolverError
from .constraint import Sense
from .expr import Variable
from .model import Model
from .result import SolveResult, SolveStatus

#: Strict-improvement threshold for the local search: a reroute must lower
#: the bottleneck utilisation by more than this to be accepted.
_IMPROVEMENT_EPSILON = 1e-12

#: Coefficient magnitudes below this are treated as cancelled terms (a
#: self-loop edge contributes +1 and -1 to the same flow row).
_COEFFICIENT_EPSILON = 1e-9


@dataclass
class _Edge:
    """One decoded logical edge: its binary variable and path structure."""

    variable: Variable
    source: int
    target: int
    #: The physical link the edge maps onto, identified by its reservation
    #: variable's name (``None`` for "stay" edges with no link term).
    link: Optional[str]


@dataclass
class _PathStatement:
    """One statement's routing sub-problem."""

    identifier: str
    edges: List[_Edge]
    adjacency: Dict[int, List[_Edge]]
    source: int
    sink: int
    guarantee_mbps: float


@dataclass
class _DecodedProblem:
    """The provisioning model re-read as a path-assignment problem."""

    statements: Dict[str, _PathStatement]
    capacity: Dict[str, float]
    reservation_variables: Dict[str, Variable]
    r_max: Optional[Variable]
    big_r_max: Optional[Variable]


def _statement_id(variable_name: str) -> str:
    """The statement identifier embedded in an ``x__{id}__{index}`` name.

    Identifiers may themselves contain ``__``; only the trailing edge index
    is split off.
    """
    return variable_name[3:].rsplit("__", 1)[0]


def _shape_error(detail: str) -> SolverError:
    return SolverError(
        "the primal heuristic only solves provisioning path models "
        f"(x__/flow__/reserve__ conventions): {detail}"
    )


def _decode_provisioning_model(model: Model) -> _DecodedProblem:
    """Recover the path-assignment structure from a provisioning model.

    Decoding relies only on the canonical constructions shared by the batch
    builder and the live model (``splice_statement_rows`` /
    ``emit_link_rows``): every decoded fact is cross-checked, and any
    deviation raises :class:`SolverError` rather than guessing.
    """
    # Keyed by variable *name*: the model enforces name uniqueness, and
    # strings cache their hash where the frozen dataclass recomputes it on
    # every lookup (this decode is the heuristic's hot loop).
    guarantee_of: Dict[str, float] = {}
    link_of: Dict[str, str] = {}
    capacity: Dict[str, float] = {}
    reservation_variables: Dict[str, Variable] = {}
    flow_rows = []

    for constraint in model.constraints():
        name = constraint.name or ""
        if name.startswith("reserve__"):
            if constraint.sense is not Sense.EQUAL:
                raise _shape_error(f"reserve row {name!r} is not an equality")
            reservation = None
            cap = 0.0
            edge_terms: List[Tuple[Variable, float]] = []
            for variable, coefficient in constraint.expression.coefficients.items():
                if variable.is_integer:
                    edge_terms.append((variable, coefficient))
                else:
                    if reservation is not None:
                        raise _shape_error(
                            f"reserve row {name!r} has several continuous terms"
                        )
                    reservation, cap = variable, coefficient
            if reservation is None or cap <= 0.0:
                raise _shape_error(
                    f"reserve row {name!r} lacks a positive-capacity reservation term"
                )
            link = reservation.name
            capacity[link] = cap
            reservation_variables[link] = reservation
            for variable, coefficient in edge_terms:
                if coefficient >= 0.0:
                    raise _shape_error(
                        f"edge term in reserve row {name!r} has a non-negative "
                        "coefficient"
                    )
                guarantee_of[variable.name] = -coefficient
                link_of[variable.name] = link
        elif name.startswith("flow__"):
            if constraint.sense is not Sense.EQUAL:
                raise _shape_error(f"flow row {name!r} is not an equality")
            flow_rows.append(constraint)

    # Flow rows are the vertices; an edge variable's +1 row is its source
    # vertex and its -1 row its target.
    source_row: Dict[str, int] = {}
    target_row: Dict[str, int] = {}
    row_balance: List[float] = []
    for row_index, constraint in enumerate(flow_rows):
        row_balance.append(-constraint.expression.constant)
        for variable, coefficient in constraint.expression.coefficients.items():
            if abs(coefficient) < _COEFFICIENT_EPSILON:
                continue
            if not variable.is_integer or not variable.name.startswith("x__"):
                raise _shape_error(
                    f"flow row references non-edge variable {variable.name!r}"
                )
            registry = source_row if coefficient > 0 else target_row
            if variable.name in registry:
                raise _shape_error(
                    f"edge variable {variable.name!r} appears twice with the "
                    "same flow direction"
                )
            registry[variable.name] = row_index

    edges_by_statement: Dict[str, List[_Edge]] = {}
    for variable in model.variables():
        if variable.is_integer:
            if not variable.name.startswith("x__"):
                raise _shape_error(f"unexpected integer variable {variable.name!r}")
            source = source_row.get(variable.name)
            target = target_row.get(variable.name)
            if source is None or target is None:
                raise _shape_error(
                    f"edge variable {variable.name!r} is missing from the flow rows"
                )
            edges_by_statement.setdefault(_statement_id(variable.name), []).append(
                _Edge(
                    variable=variable,
                    source=source,
                    target=target,
                    link=link_of.get(variable.name),
                )
            )
        elif variable.name not in reservation_variables and variable.name not in (
            "r_max",
            "R_max",
        ):
            raise _shape_error(f"unexpected continuous variable {variable.name!r}")

    statements: Dict[str, _PathStatement] = {}
    for identifier, edges in edges_by_statement.items():
        sources = set()
        sinks = set()
        adjacency: Dict[int, List[_Edge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.source, []).append(edge)
            for vertex in (edge.source, edge.target):
                balance = row_balance[vertex]
                if balance > 0.5:
                    sources.add(vertex)
                elif balance < -0.5:
                    sinks.add(vertex)
        if len(sources) != 1 or len(sinks) != 1:
            raise _shape_error(
                f"statement {identifier!r} does not have exactly one "
                "source and one sink flow row"
            )
        guarantee = max(
            (guarantee_of.get(edge.variable.name, 0.0) for edge in edges),
            default=0.0,
        )
        statements[identifier] = _PathStatement(
            identifier=identifier,
            edges=edges,
            adjacency=adjacency,
            source=next(iter(sources)),
            sink=next(iter(sinks)),
            guarantee_mbps=guarantee,
        )
    if not statements:
        raise _shape_error("model has no edge variables")

    def _optional_variable(name: str) -> Optional[Variable]:
        try:
            return model.variable(name)
        except SolverError:
            return None

    return _DecodedProblem(
        statements=statements,
        capacity=capacity,
        reservation_variables=reservation_variables,
        r_max=_optional_variable("r_max"),
        big_r_max=_optional_variable("R_max"),
    )


def _best_path(
    statement: _PathStatement,
    load: Mapping[str, float],
    capacity: Mapping[str, float],
    forbidden: frozenset = frozenset(),
) -> Optional[List[_Edge]]:
    """The statement's best source-to-sink path on the current residual load.

    Lexicographic Dijkstra minimising ``(bottleneck utilisation after
    adding this statement's load, hop count)``; both label components are
    monotone along a path, and ties resolve by vertex id, so the result is
    deterministic.  Returns ``None`` when the sink is unreachable (all
    capacity-less or forbidden links pruned away).
    """
    guarantee = statement.guarantee_mbps
    infinity = (math.inf, math.inf)
    best: Dict[int, Tuple[float, int]] = {statement.source: (0.0, 0)}
    parent: Dict[int, _Edge] = {}
    heap: List[Tuple[float, int, int]] = [(0.0, 0, statement.source)]
    while heap:
        bottleneck, hops, vertex = heapq.heappop(heap)
        if (bottleneck, hops) != best.get(vertex):
            continue
        if vertex == statement.sink:
            break
        for edge in statement.adjacency.get(vertex, ()):
            link = edge.link
            if link is None or guarantee <= 0.0:
                edge_utilization = 0.0
            else:
                if link in forbidden:
                    continue
                cap = capacity.get(link, 0.0)
                if cap <= 0.0:
                    continue
                edge_utilization = (load.get(link, 0.0) + guarantee) / cap
            label = (
                bottleneck if bottleneck >= edge_utilization else edge_utilization,
                hops + 1,
            )
            if label < best.get(edge.target, infinity):
                best[edge.target] = label
                parent[edge.target] = edge
                heapq.heappush(heap, (label[0], label[1], edge.target))
    if statement.sink not in parent:
        return None
    path: List[_Edge] = []
    vertex = statement.sink
    while vertex != statement.source:
        edge = parent[vertex]
        path.append(edge)
        vertex = edge.source
    path.reverse()
    return path


def _path_from_start(
    statement: _PathStatement, warm_start: Mapping[str, float]
) -> Optional[List[_Edge]]:
    """Decode one statement's path from a warm start, dropping spurious cycles."""
    by_source: Dict[int, _Edge] = {}
    for edge in statement.edges:
        if warm_start.get(edge.variable.name, 0.0) > 0.5:
            if edge.source in by_source:
                return None
            by_source[edge.source] = edge
    path: List[_Edge] = []
    vertex = statement.source
    seen = set()
    while vertex != statement.sink:
        if vertex in seen:
            return None
        seen.add(vertex)
        edge = by_source.get(vertex)
        if edge is None:
            return None
        path.append(edge)
        vertex = edge.target
    return path


def _loads(
    problem: _DecodedProblem, chosen: Mapping[str, Sequence[_Edge]]
) -> Dict[str, float]:
    """Exact per-link reserved Mbps under the chosen paths (multiplicity-aware)."""
    load: Dict[str, float] = {}
    for identifier, path in chosen.items():
        guarantee = problem.statements[identifier].guarantee_mbps
        if guarantee <= 0.0:
            continue
        for edge in path:
            if edge.link is not None:
                load[edge.link] = load.get(edge.link, 0.0) + guarantee
    return load


def _bottleneck(
    problem: _DecodedProblem, load: Mapping[str, float]
) -> Tuple[float, Optional[str]]:
    """The most-utilised link and its utilisation (deterministic tie-break)."""
    best_utilization = 0.0
    best_link: Optional[str] = None
    for link in sorted(load):
        cap = problem.capacity.get(link, 0.0)
        utilization = load[link] / cap if cap > 0.0 else math.inf
        if utilization > best_utilization:
            best_utilization = utilization
            best_link = link
    return best_utilization, best_link


class PrimalHeuristicSolver:
    """Deterministic iterated local search over per-statement path choices."""

    name = "heuristic"
    consumes_warm_starts = True
    supports_time_limit = True
    supports_node_limit = False

    def __init__(
        self,
        time_limit_seconds: Optional[float] = None,
        max_rounds: int = 24,
    ) -> None:
        self.time_limit_seconds = time_limit_seconds
        self.max_rounds = max_rounds

    def solve(
        self, model: Model, warm_start: Optional[Mapping[str, float]] = None
    ) -> SolveResult:
        """Find a feasible path assignment fast (``FEASIBLE``/``ERROR``).

        Raises :class:`SolverError` when the model is not a provisioning
        path model — the structural decode, not the search, is what fails.
        """
        started = telemetry.clock()
        problem = _decode_provisioning_model(model)
        deadline = (
            started + self.time_limit_seconds
            if self.time_limit_seconds is not None
            else None
        )

        # Phase 1: greedy construction on residual capacity, largest
        # guarantees first (they are the hardest to place late).
        order = sorted(
            problem.statements,
            key=lambda sid: (-problem.statements[sid].guarantee_mbps, sid),
        )
        load: Dict[str, float] = {}
        chosen: Dict[str, List[_Edge]] = {}
        seeded = 0
        for identifier in order:
            statement = problem.statements[identifier]
            path = None
            if warm_start:
                path = _path_from_start(statement, warm_start)
                if path is not None:
                    seeded += 1
            if path is None:
                path = _best_path(statement, load, problem.capacity)
            if path is None:
                return SolveResult(
                    status=SolveStatus.ERROR,
                    statistics={
                        "solve_seconds": telemetry.clock() - started,
                        "heuristic_unroutable": 1.0,
                    },
                )
            chosen[identifier] = path
            if statement.guarantee_mbps > 0.0:
                for edge in path:
                    if edge.link is not None:
                        load[edge.link] = (
                            load.get(edge.link, 0.0) + statement.guarantee_mbps
                        )

        # Phase 2: improvement / perturbation loop.
        rounds = 0
        while rounds < self.max_rounds:
            if deadline is not None and telemetry.clock() > deadline:
                break
            rounds += 1
            if self._improve_once(problem, chosen):
                continue
            if not self._perturb(problem, chosen, deadline):
                break

        return self._assemble(model, problem, chosen, started, rounds, warm_start, seeded)

    # -- local search -----------------------------------------------------------

    def _bottleneck_users(
        self,
        problem: _DecodedProblem,
        chosen: Mapping[str, Sequence[_Edge]],
        bottleneck: str,
    ) -> List[str]:
        """Statements loading the bottleneck link, heaviest guarantee first."""
        return [
            identifier
            for identifier in sorted(
                chosen,
                key=lambda sid: (-problem.statements[sid].guarantee_mbps, sid),
            )
            if problem.statements[identifier].guarantee_mbps > 0.0
            and any(edge.link == bottleneck for edge in chosen[identifier])
        ]

    def _improve_once(
        self, problem: _DecodedProblem, chosen: Dict[str, List[_Edge]]
    ) -> bool:
        """Accept the first single-statement reroute that lowers the bottleneck."""
        load = _loads(problem, chosen)
        utilization, bottleneck = _bottleneck(problem, load)
        if bottleneck is None:
            return False
        for identifier in self._bottleneck_users(problem, chosen, bottleneck):
            statement = problem.statements[identifier]
            residual = dict(load)
            for edge in chosen[identifier]:
                if edge.link is not None:
                    residual[edge.link] -= statement.guarantee_mbps
            path = _best_path(statement, residual, problem.capacity)
            if path is None:
                continue
            for edge in path:
                if edge.link is not None:
                    residual[edge.link] = (
                        residual.get(edge.link, 0.0) + statement.guarantee_mbps
                    )
            new_utilization, _ = _bottleneck(problem, residual)
            if new_utilization < utilization - _IMPROVEMENT_EPSILON:
                chosen[identifier] = path
                return True
        return False

    def _perturb(
        self,
        problem: _DecodedProblem,
        chosen: Dict[str, List[_Edge]],
        deadline: Optional[float],
    ) -> bool:
        """Kick the heaviest bottleneck user off the bottleneck link and repair.

        The perturbed-and-repaired solution replaces the current one only
        when strictly better, so the search can never cycle.
        """
        load = _loads(problem, chosen)
        utilization, bottleneck = _bottleneck(problem, load)
        if bottleneck is None:
            return False
        users = self._bottleneck_users(problem, chosen, bottleneck)
        if not users:
            return False
        identifier = users[0]
        statement = problem.statements[identifier]
        residual = dict(load)
        for edge in chosen[identifier]:
            if edge.link is not None:
                residual[edge.link] -= statement.guarantee_mbps
        path = _best_path(
            statement, residual, problem.capacity, forbidden=frozenset((bottleneck,))
        )
        if path is None:
            return False
        candidate = dict(chosen)
        candidate[identifier] = path
        for _ in range(3):
            if deadline is not None and telemetry.clock() > deadline:
                break
            if not self._improve_once(problem, candidate):
                break
        new_utilization, _ = _bottleneck(problem, _loads(problem, candidate))
        if new_utilization < utilization - _IMPROVEMENT_EPSILON:
            chosen.clear()
            chosen.update(candidate)
            return True
        return False

    # -- result assembly --------------------------------------------------------

    def _assemble(
        self,
        model: Model,
        problem: _DecodedProblem,
        chosen: Mapping[str, Sequence[_Edge]],
        started: float,
        rounds: int,
        warm_start: Optional[Mapping[str, float]],
        seeded: int,
    ) -> SolveResult:
        values: Dict[Variable, float] = {}
        for statement in problem.statements.values():
            for edge in statement.edges:
                values[edge.variable] = 0.0
        for path in chosen.values():
            for edge in path:
                values[edge.variable] = 1.0
        load = _loads(problem, chosen)
        max_fraction = 0.0
        max_reserved = 0.0
        for link, reservation in problem.reservation_variables.items():
            cap = problem.capacity[link]
            reserved = load.get(link, 0.0)
            fraction = reserved / cap if cap > 0.0 else 0.0
            values[reservation] = fraction
            max_fraction = max(max_fraction, fraction)
            max_reserved = max(max_reserved, reserved)
        if problem.r_max is not None:
            values[problem.r_max] = max_fraction
        if problem.big_r_max is not None:
            values[problem.big_r_max] = max_reserved

        statistics: Dict[str, float] = {
            "solve_seconds": telemetry.clock() - started,
            "num_variables": float(model.num_variables()),
            "num_integer_variables": float(model.num_integer_variables()),
            "heuristic_rounds": float(rounds),
        }
        if warm_start is not None:
            if seeded:
                statistics["warm_start_used"] = 1.0
            else:
                statistics["warm_start_rejected"] = 1.0
        if max_fraction > 1.0 + 1e-9:
            # The constructed assignment oversubscribes a link: no feasible
            # point found (the heuristic cannot prove none exists).
            statistics["heuristic_overload"] = max_fraction
            return SolveResult(status=SolveStatus.ERROR, statistics=statistics)
        return SolveResult(
            status=SolveStatus.FEASIBLE,
            values=values,
            objective=model.objective_value(values),
            statistics=statistics,
        )
