PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench bench-smoke bench-reprovision

# Tier-1 verification: the full unit + benchmark suite at quick scale.
test:
	$(PYTEST) -x -q

# The full benchmark suite (set MERLIN_BENCH_SCALE=full for paper scale).
bench:
	$(PYTEST) -q benchmarks

# Fast smoke: the smallest Figure 8 scaling point plus one incremental
# re-provisioning round trip.
bench-smoke:
	$(PYTEST) -q benchmarks/test_fig8_scaling.py::test_fig8_smallest_point_smoke \
		benchmarks/test_fig10b_reprovisioning.py::test_reprovision_smoke

# Figure 10b': incremental re-provisioning latency vs full recompiles
# (writes benchmarks/results/fig10b_reprovisioning.txt).
bench-reprovision:
	$(PYTEST) -q benchmarks/test_fig10b_reprovisioning.py
