PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test check lint-clock lint-pool bench bench-smoke bench-reprovision bench-churn bench-checkpoint bench-portfolio bench-telemetry bench-fabric

# Tier-1 verification: the full unit + benchmark suite at quick scale.
test:
	$(PYTEST) -x -q

# CI gate: tier-1 tests plus a byte-compile of the whole source tree
# (catches syntax errors in modules the suite does not import), the
# telemetry clock and process-pool lints, the disabled-overhead guard,
# the seeded churn replay (zero session invalidations under failures),
# and the checkpoint-scale guard (per-delta checkpoint cost stays
# O(delta) between the 1k and 100k statement populations).
check: lint-clock lint-pool
	$(PYTEST) -x -q
	python -m compileall -q src
	$(PYTEST) -q benchmarks/test_telemetry_overhead.py
	$(PYTEST) -q benchmarks/test_churn.py benchmarks/test_checkpoint_scale.py
	$(PYTEST) -q benchmarks/test_ablation_design_choices.py -k "portfolio"

# All timing must flow through the injectable telemetry clock: a bare
# time.perf_counter() anywhere in src/repro outside the telemetry package
# dodges clock injection (tests/telemetry/test_clock_lint.py enforces the
# same rule under pytest).
lint-clock:
	@if grep -rn "time\.perf_counter" src/repro --include="*.py" | grep -v "^src/repro/telemetry/"; then \
		echo "bare time.perf_counter() found; use repro.telemetry.clock()"; \
		exit 1; \
	fi

# Component solves must run on the persistent solve fabric: a bare
# ProcessPoolExecutor anywhere in src/repro outside repro/fabric/
# reintroduces per-call worker spin-up and dodges the fabric's crash
# containment (tests/fabric/test_pool_lint.py enforces the same rule
# under pytest).
lint-pool:
	@if grep -rn "ProcessPoolExecutor(" src/repro --include="*.py" | grep -v "^src/repro/fabric/"; then \
		echo "bare ProcessPoolExecutor construction found; use repro.fabric.SolveFabric"; \
		exit 1; \
	fi

# The full benchmark suite (set MERLIN_BENCH_SCALE=full for paper scale).
bench:
	$(PYTEST) -q benchmarks

# Fast smoke: the smallest Figure 8 scaling point, one incremental
# re-provisioning round trip, the footprint-tightening partition guard
# (the pod-tenant workload plus one `.*` statement must keep >= one MIP
# component per tenant), the seeded churn replay, and the telemetry
# disabled-path overhead guard.
bench-smoke:
	$(PYTEST) -q benchmarks/test_fig8_scaling.py::test_fig8_smallest_point_smoke \
		benchmarks/test_fig10b_reprovisioning.py::test_reprovision_smoke \
		benchmarks/test_fig10b_reprovisioning.py::test_footprint_partitioning_smoke \
		benchmarks/test_churn.py \
		benchmarks/test_checkpoint_scale.py \
		benchmarks/test_ablation_design_choices.py::test_ablation_portfolio \
		benchmarks/test_telemetry_overhead.py

# Figure 10b': incremental re-provisioning latency vs full recompiles
# (writes benchmarks/results/fig10b_reprovisioning.txt).
bench-reprovision:
	$(PYTEST) -q benchmarks/test_fig10b_reprovisioning.py

# Churn & failure scenario replay: a seeded 200-event stream on the
# arity-4 fat tree replayed against one transactional session, asserting
# zero invalidations and slack-widening recovery of every cost-bound
# infeasibility (writes benchmarks/results/churn_replay.txt).
# MERLIN_BENCH_SCALE=full runs the 500-event arity-6 stream.
bench-churn:
	$(PYTEST) -q benchmarks/test_churn.py

# Solver-portfolio ablation: every registered backend name on the smoke
# fat-tree workload (auto must stay within 1.25x of the best fixed
# backend) plus the anytime demo — the primal heuristic's simulator-
# verified allocation in <100 ms where the exact solve takes >1 s.
bench-portfolio:
	$(PYTEST) -q benchmarks/test_ablation_design_choices.py -k "portfolio"

# Checkpoint cost at scale: undo-journal marks vs legacy copying
# snapshots at 1k vs 100k statements, plus a join/leave/renegotiation
# stream sustained at the large population, one transaction per event
# (writes benchmarks/results/checkpoint_scale.txt; pinned seed).
# MERLIN_BENCH_SCALE=full raises the large population to 250k.
bench-checkpoint:
	$(PYTEST) -q benchmarks/test_checkpoint_scale.py

# Telemetry overhead guard: the disabled (default) recorder's per-span
# cost, measured on the Figure-8 smoke point, must stay under 2% of the
# compile wall time (writes benchmarks/results/telemetry_overhead.txt).
bench-telemetry:
	$(PYTEST) -q benchmarks/test_telemetry_overhead.py

# Solve-fabric guard: on the pod-tenant workload, a warm-cache re-sweep
# must be >= 3x faster than the cold sweep with byte-identical
# allocations (every component served from the content-addressed cache),
# and reusing one persistent SolveFabric across calls must beat per-call
# pool spin-up (writes benchmarks/results/fabric.txt).
bench-fabric:
	$(PYTEST) -q benchmarks/test_fabric.py
