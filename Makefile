PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench bench-smoke

# Tier-1 verification: the full unit + benchmark suite at quick scale.
test:
	$(PYTEST) -x -q

# The full benchmark suite (set MERLIN_BENCH_SCALE=full for paper scale).
bench:
	$(PYTEST) -q benchmarks

# Fast smoke: the Figure 8 scaling benchmark's smallest point only.
bench-smoke:
	$(PYTEST) -q benchmarks/test_fig8_scaling.py::test_fig8_smallest_point_smoke
